// Longitudinal monitor tests: TimeSeries store semantics and codecs (JSONL,
// binary, SeriesPoint JSON), rolling SLO evaluation, event detection, the
// scripted-outage fault hook, end-to-end run_monitor determinism across
// thread counts, Prometheus exposition, and the HTML dashboard.
#include <gtest/gtest.h>

#include <cmath>

#include "core/campaign.h"
#include "core/parallel_campaign.h"
#include "monitor/diagnose.h"
#include "monitor/events.h"
#include "monitor/monitor.h"
#include "monitor/prom.h"
#include "monitor/slo.h"
#include "obs/timeseries.h"
#include "web/dashboard.h"

namespace {

using namespace ednsm;

// Shorthand writers for the common single-pair series used below.
void add_epoch(obs::TimeSeries& ts, int epoch, std::uint64_t queries, std::uint64_t failures,
               double latency_ms) {
  ts.add_counter(monitor::kMetricQueries, "v1", "r1", "DoH", epoch, queries);
  if (failures > 0) ts.add_counter(monitor::kMetricFailures, "v1", "r1", "DoH", epoch, failures);
  for (std::uint64_t i = 0; i < queries - failures; ++i) {
    ts.observe(monitor::kMetricResponseMs, "v1", "r1", "DoH", epoch, latency_ms);
  }
}

monitor::MonitorSpec small_monitor_spec() {
  monitor::MonitorSpec spec;
  spec.base.resolvers = {"dns.google", "ordns.he.net"};
  spec.base.vantage_ids = {"ec2-ohio"};
  spec.base.rounds = 2;
  spec.base.seed = 20260805;
  spec.epochs = 6;
  return spec;
}

TEST(TimeSeries, CountersGaugesHistogramsByBucket) {
  obs::TimeSeries ts(10);
  EXPECT_EQ(ts.bucket_of(29), 2);
  ts.add_counter("q", "v", "r", "DoH", 5, 3);
  ts.add_counter("q", "v", "r", "DoH", 7);  // same bucket 0
  ts.add_counter("q", "v", "r", "DoH", 25); // bucket 2
  EXPECT_EQ(ts.counter_at("q", "v", "r", "DoH", 0), 4u);
  EXPECT_EQ(ts.counter_at("q", "v", "r", "DoH", 1), 0u);
  EXPECT_EQ(ts.counter_at("q", "v", "r", "DoH", 2), 1u);
  EXPECT_EQ(ts.counter_at("q", "other", "r", "DoH", 0), 0u);

  ts.set_gauge("g", "v", "r", "DoH", 5, 1.5);
  ts.set_gauge("g", "v", "r", "DoH", 9, 2.5);  // same bucket: last write wins
  EXPECT_DOUBLE_EQ(ts.gauge_at("g", "v", "r", "DoH", 0), 2.5);

  ts.observe("lat", "v", "r", "DoH", 5, 10.0);
  ts.observe("lat", "v", "r", "DoH", 6, 30.0);
  const stats::Welford* d = ts.dist_at("lat", "v", "r", "DoH", 0);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 20.0);
  EXPECT_TRUE(std::isnan(ts.dist_quantile("lat", "v", "r", "DoH", 3, 0.5)));

  // 2 counter buckets + 1 gauge + 1 histogram (both observations share
  // bucket 0).
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.bucket_range(), (std::pair<std::int64_t, std::int64_t>{0, 2}));
}

TEST(TimeSeries, WindowQuantileMergesBuckets) {
  obs::TimeSeries ts(1);
  for (int i = 0; i < 50; ++i) ts.observe("lat", "v", "r", "DoH", 0, 100.0);
  for (int i = 0; i < 50; ++i) ts.observe("lat", "v", "r", "DoH", 1, 500.0);
  const double p50_single = ts.dist_quantile("lat", "v", "r", "DoH", 0, 0.5);
  EXPECT_NEAR(p50_single, 100.0, obs::TimeSeries::kHistBinWidthMs);
  // Across both buckets the upper quantile must see bucket 1's samples.
  const double p95 = ts.window_quantile("lat", "v", "r", "DoH", 0, 1, 0.95);
  EXPECT_NEAR(p95, 500.0, obs::TimeSeries::kHistBinWidthMs);
  EXPECT_TRUE(std::isnan(ts.window_quantile("lat", "v", "r", "DoH", 5, 9, 0.5)));
}

TEST(TimeSeries, SnapshotCanonicalAcrossInternOrder) {
  // Same logical contents, opposite insertion (and therefore intern) order.
  obs::TimeSeries a(1), b(1);
  a.add_counter("m1", "va", "ra", "DoH", 0, 1);
  a.add_counter("m2", "vb", "rb", "DoT", 1, 2);
  b.add_counter("m2", "vb", "rb", "DoT", 1, 2);
  b.add_counter("m1", "va", "ra", "DoH", 0, 1);
  EXPECT_EQ(a.jsonl(), b.jsonl());
  EXPECT_EQ(a.to_binary(), b.to_binary());
}

TEST(TimeSeries, MergeByNameAcrossSymbolTables) {
  obs::TimeSeries a(1), b(1);
  a.add_counter("q", "v1", "r1", "DoH", 0, 2);
  b.add_counter("extra", "v9", "r9", "DoH", 0, 7);  // interned first in b only
  b.add_counter("q", "v1", "r1", "DoH", 0, 5);
  b.set_gauge("g", "v1", "r1", "DoH", 0, 1.0);
  a.observe("lat", "v1", "r1", "DoH", 0, 10.0);
  b.observe("lat", "v1", "r1", "DoH", 0, 20.0);
  a.merge(b);
  EXPECT_EQ(a.counter_at("q", "v1", "r1", "DoH", 0), 7u);
  EXPECT_EQ(a.counter_at("extra", "v9", "r9", "DoH", 0), 7u);
  EXPECT_DOUBLE_EQ(a.gauge_at("g", "v1", "r1", "DoH", 0), 1.0);
  const stats::Welford* d = a.dist_at("lat", "v1", "r1", "DoH", 0);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 15.0);

  // Merging an empty store in either direction is a no-op on contents.
  obs::TimeSeries empty(1);
  const std::string before = a.jsonl();
  a.merge(empty);
  EXPECT_EQ(a.jsonl(), before);
  empty.merge(a);
  EXPECT_EQ(empty.jsonl(), before);
}

TEST(TimeSeries, JsonlRoundTripIsExact) {
  obs::TimeSeries ts(3);
  ts.add_counter("q", "v1", "r1", "DoH", 0, 4);
  ts.set_gauge("g", "v1", "r1", "DoH", 3, 2.25);
  for (int i = 0; i < 17; ++i) ts.observe("lat", "v1", "r1", "DoH", 6, 12.5 * i);
  const std::string text = ts.jsonl();

  auto back = obs::TimeSeries::read_jsonl(text);
  ASSERT_TRUE(back) << back.error();
  EXPECT_EQ(back.value().bucket_width(), 3);
  EXPECT_EQ(back.value().jsonl(), text);
  // Histogram accumulators survive exactly, not approximately.
  const stats::Welford* d = back.value().dist_at("lat", "v1", "r1", "DoH", 2);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 17u);
  EXPECT_DOUBLE_EQ(d->mean(), ts.dist_at("lat", "v1", "r1", "DoH", 2)->mean());
  EXPECT_DOUBLE_EQ(d->m2(), ts.dist_at("lat", "v1", "r1", "DoH", 2)->m2());

  EXPECT_FALSE(obs::TimeSeries::read_jsonl(""));
  EXPECT_FALSE(obs::TimeSeries::read_jsonl("{\"kind\":\"point\"}"));
}

TEST(TimeSeries, BinaryRoundTripAndValidation) {
  obs::TimeSeries ts(2);
  ts.add_counter("q", "v1", "r1", "DoH", 0, 9);
  ts.set_gauge("g", "v2", "r2", "DoT", 4, -1.5);
  for (int i = 0; i < 40; ++i) ts.observe("lat", "v1", "r1", "DoH", 2, 7.0 * i);
  const util::Bytes blob = ts.to_binary();

  auto back = obs::TimeSeries::from_binary(blob);
  ASSERT_TRUE(back) << back.error();
  EXPECT_EQ(back.value().jsonl(), ts.jsonl());
  EXPECT_EQ(back.value().to_binary(), blob);

  // Corruption: wrong magic, truncation, and trailing garbage all fail.
  util::Bytes bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(obs::TimeSeries::from_binary(bad_magic));
  util::Bytes truncated(blob.begin(), blob.begin() + static_cast<long>(blob.size() / 2));
  EXPECT_FALSE(obs::TimeSeries::from_binary(truncated));
  util::Bytes trailing = blob;
  trailing.push_back(0);
  EXPECT_FALSE(obs::TimeSeries::from_binary(trailing));
  EXPECT_FALSE(obs::TimeSeries::from_binary(util::Bytes{}));
}

TEST(TimeSeries, SeriesPointCodecAndInsertValidation) {
  obs::TimeSeries ts(1);
  ts.observe("lat", "v", "r", "DoH", 0, 42.0);
  const std::vector<obs::SeriesPoint> points = ts.snapshot();
  ASSERT_EQ(points.size(), 1u);
  auto round = obs::SeriesPoint::from_json(points[0].to_json());
  ASSERT_TRUE(round) << round.error();
  EXPECT_EQ(round.value().kind, "histogram");
  EXPECT_EQ(round.value().count, 1u);

  obs::SeriesPoint bad_kind = points[0];
  bad_kind.kind = "summary";
  obs::TimeSeries target(1);
  EXPECT_FALSE(target.insert(bad_kind));
  obs::SeriesPoint bad_bin = points[0];
  // kHistBins itself is the overflow bin; one past it is out of range.
  bad_bin.bins = {{static_cast<std::uint32_t>(obs::TimeSeries::kHistBins) + 1, 1}};
  EXPECT_FALSE(target.insert(bad_bin));
  EXPECT_TRUE(target.insert(points[0]));
}

TEST(Slo, StatesFollowEpochAndWindowSignals) {
  obs::TimeSeries ts(1);
  add_epoch(ts, 0, 10, 0, 50.0);
  add_epoch(ts, 1, 10, 10, 0.0);   // full outage epoch
  add_epoch(ts, 2, 10, 0, 50.0);
  add_epoch(ts, 3, 10, 0, 50.0);
  add_epoch(ts, 4, 10, 0, 50.0);

  monitor::SloConfig config;
  config.window_epochs = 2;
  const std::vector<monitor::SloSample> slos =
      monitor::evaluate_slos(ts, config, {"v1"}, {"r1"}, "DoH", 5);
  ASSERT_EQ(slos.size(), 5u);
  EXPECT_EQ(slos[0].state, "healthy");
  EXPECT_EQ(slos[1].state, "outage");
  EXPECT_DOUBLE_EQ(slos[1].availability, 0.0);
  // Epoch 2 recovered, but its window still contains the outage: degraded
  // (window availability 0.5 < any tier's floor).
  EXPECT_EQ(slos[2].state, "degraded");
  EXPECT_DOUBLE_EQ(slos[2].window_availability, 0.5);
  EXPECT_EQ(slos[3].state, "healthy");
  EXPECT_EQ(slos[4].state, "healthy");
}

TEST(Slo, LatencyBreachDegradesPerTier) {
  obs::TimeSeries ts(1);
  // 300 ms p50: inside hobbyist targets, far outside hyperscale's 120 ms.
  ts.add_counter(monitor::kMetricQueries, "v1", "dns.google", "DoH", 0, 10);
  ts.add_counter(monitor::kMetricQueries, "v1", "unknown.example", "DoH", 0, 10);
  for (int i = 0; i < 10; ++i) {
    ts.observe(monitor::kMetricResponseMs, "v1", "dns.google", "DoH", 0, 300.0);
    ts.observe(monitor::kMetricResponseMs, "v1", "unknown.example", "DoH", 0, 300.0);
  }
  monitor::SloConfig config;
  const std::vector<monitor::SloSample> slos =
      monitor::evaluate_slos(ts, config, {"v1"}, {"dns.google", "unknown.example"}, "DoH", 1);
  ASSERT_EQ(slos.size(), 2u);
  EXPECT_EQ(slos[0].resolver, "dns.google");
  EXPECT_EQ(slos[0].state, "degraded");
  EXPECT_EQ(slos[1].state, "healthy");  // unknown hostname judged as hobbyist
}

TEST(Slo, EmptySeriesIsHealthy) {
  const obs::TimeSeries ts(1);
  monitor::SloConfig config;
  const std::vector<monitor::SloSample> slos =
      monitor::evaluate_slos(ts, config, {"v1"}, {"r1"}, "DoH", 3);
  ASSERT_EQ(slos.size(), 3u);
  for (const monitor::SloSample& s : slos) {
    EXPECT_EQ(s.state, "healthy");
    EXPECT_EQ(s.queries, 0u);
    EXPECT_DOUBLE_EQ(s.availability, 1.0);
    EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);  // NaN-free JSON for empty windows
  }
}

TEST(Events, MaximalRunsWithExactBounds) {
  obs::TimeSeries ts(1);
  add_epoch(ts, 0, 10, 0, 50.0);
  add_epoch(ts, 1, 10, 10, 0.0);
  add_epoch(ts, 2, 10, 10, 0.0);
  add_epoch(ts, 3, 10, 0, 50.0);
  add_epoch(ts, 4, 10, 0, 50.0);
  add_epoch(ts, 5, 10, 0, 50.0);

  monitor::SloConfig config;
  config.window_epochs = 1;  // no smear: isolate the outage run
  config.flap_transitions = 5;
  const std::vector<monitor::SloSample> slos =
      monitor::evaluate_slos(ts, config, {"v1"}, {"r1"}, "DoH", 6);
  const std::vector<monitor::MonitorEvent> events = monitor::detect_events(slos, config);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, "outage");
  EXPECT_EQ(events[0].start_epoch, 1);
  EXPECT_EQ(events[0].end_epoch, 2);
}

TEST(Events, FlapBracketsTransitions) {
  obs::TimeSeries ts(1);
  add_epoch(ts, 0, 10, 0, 50.0);
  add_epoch(ts, 1, 10, 10, 0.0);
  add_epoch(ts, 2, 10, 0, 50.0);
  add_epoch(ts, 3, 10, 10, 0.0);

  monitor::SloConfig config;
  config.window_epochs = 1;
  config.flap_transitions = 3;
  const std::vector<monitor::SloSample> slos =
      monitor::evaluate_slos(ts, config, {"v1"}, {"r1"}, "DoH", 4);
  const std::vector<monitor::MonitorEvent> events = monitor::detect_events(slos, config);
  // Two outage runs plus the flap spanning all three transitions.
  ASSERT_EQ(events.size(), 3u);
  const monitor::MonitorEvent* flap = nullptr;
  for (const monitor::MonitorEvent& e : events) {
    if (e.type == "flap") flap = &e;
  }
  ASSERT_NE(flap, nullptr);
  EXPECT_EQ(flap->transitions, 3);
  EXPECT_EQ(flap->start_epoch, 1);
  EXPECT_EQ(flap->end_epoch, 3);

  auto round = monitor::MonitorEvent::from_json(flap->to_json());
  ASSERT_TRUE(round) << round.error();
  EXPECT_EQ(round.value().transitions, 3);
}

TEST(FaultWindow, SpecCodecAndValidation) {
  core::MeasurementSpec spec;
  spec.resolvers = {"dns.google"};
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 4;
  // No windows: key omitted entirely, so pre-monitor result files round-trip.
  EXPECT_TRUE(spec.to_json().at("fault_windows").is_null());

  spec.fault_windows.push_back(core::FaultWindow{"dns.google", 1, 3});
  ASSERT_TRUE(spec.validate());
  auto round = core::MeasurementSpec::from_json(spec.to_json());
  ASSERT_TRUE(round) << round.error();
  ASSERT_EQ(round.value().fault_windows.size(), 1u);
  EXPECT_EQ(round.value().fault_windows[0].resolver, "dns.google");
  EXPECT_EQ(round.value().fault_windows[0].from_round, 1);
  EXPECT_EQ(round.value().fault_windows[0].to_round, 3);

  spec.fault_windows[0].to_round = 1;  // empty window
  EXPECT_FALSE(spec.validate());
  spec.fault_windows[0] = core::FaultWindow{"", 0, 2};
  EXPECT_FALSE(spec.validate());
}

TEST(FaultWindow, CampaignOutageCoversExactRounds) {
  core::MeasurementSpec spec;
  spec.resolvers = {"dns.google"};
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 4;
  spec.seed = 7;
  spec.fault_windows.push_back(core::FaultWindow{"dns.google", 1, 3});

  const core::CampaignResult result = core::run_parallel_campaign(spec, 1);
  ASSERT_FALSE(result.records.empty());
  std::uint64_t ok_outside = 0;
  for (const core::ResultRecord& r : result.records) {
    if (r.round >= 1 && r.round < 3) {
      // Offline rounds fail unconditionally.
      EXPECT_FALSE(r.ok) << "round " << r.round;
    } else {
      ok_outside += r.ok ? 1 : 0;
    }
  }
  // The resolver recovered: rounds outside the window still answer.
  EXPECT_GT(ok_outside, 0u);

  // An identical spec without windows is unaffected by the hook's existence.
  core::MeasurementSpec clean = spec;
  clean.fault_windows.clear();
  const core::CampaignResult clean_result = core::run_parallel_campaign(clean, 1);
  std::uint64_t clean_ok = 0;
  for (const core::ResultRecord& r : clean_result.records) clean_ok += r.ok ? 1 : 0;
  EXPECT_GT(clean_ok, ok_outside);
}

TEST(Monitor, SpecJsonRoundTripAndValidation) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.outages.push_back(monitor::OutageScript{"dns.google", 2, 4});
  auto round = monitor::MonitorSpec::from_json(spec.to_json());
  ASSERT_TRUE(round) << round.error();
  EXPECT_EQ(round.value().epochs, 6);
  ASSERT_EQ(round.value().outages.size(), 1u);
  EXPECT_EQ(round.value().outages[0].to_epoch, 4);

  spec.epochs = 0;
  EXPECT_FALSE(spec.validate());
  spec.epochs = 6;
  spec.outages[0].to_epoch = 2;  // empty window
  EXPECT_FALSE(spec.validate());
}

TEST(Monitor, ScriptedOutageYieldsExactlyOneOutageEvent) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.outages.push_back(monitor::OutageScript{"dns.google", 2, 4});

  auto result = monitor::run_monitor(spec, 2);
  ASSERT_TRUE(result) << result.error();
  const monitor::MonitorResult& mon = result.value();
  ASSERT_EQ(mon.epochs.size(), 6u);

  std::vector<const monitor::MonitorEvent*> outages;
  for (const monitor::MonitorEvent& e : mon.events) {
    if (e.type == "outage") outages.push_back(&e);
  }
  ASSERT_EQ(outages.size(), 1u) << monitor::events_to_json(mon.events).dump(2);
  EXPECT_EQ(outages[0]->resolver, "dns.google");
  EXPECT_EQ(outages[0]->vantage, "ec2-ohio");
  EXPECT_EQ(outages[0]->start_epoch, 2);
  EXPECT_EQ(outages[0]->end_epoch, 3);  // inclusive: epochs {2, 3} offline

  // The untouched resolver may pick up natural failures from the stochastic
  // failure model (and briefly dip to "degraded"), but it must never be in
  // full outage — that state is reserved for the scripted window.
  for (const monitor::SloSample& s : mon.slos) {
    if (s.resolver == "ordns.he.net") {
      EXPECT_NE(s.state, "outage") << "epoch " << s.epoch;
    }
  }
}

TEST(Monitor, RunIsByteIdenticalAcrossThreadCounts) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.base.vantage_ids = {"ec2-ohio", "ec2-frankfurt"};
  spec.epochs = 3;
  spec.outages.push_back(monitor::OutageScript{"ordns.he.net", 1, 2});

  auto one = monitor::run_monitor(spec, 1);
  auto many = monitor::run_monitor(spec, 8);
  ASSERT_TRUE(one) << one.error();
  ASSERT_TRUE(many) << many.error();
  EXPECT_EQ(one.value().to_json().dump(0), many.value().to_json().dump(0));
  EXPECT_EQ(one.value().series.to_binary(), many.value().series.to_binary());
  EXPECT_EQ(one.value().series.jsonl(), many.value().series.jsonl());
}

TEST(Monitor, ResultJsonRoundTripReproducesEvaluation) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.epochs = 4;
  spec.outages.push_back(monitor::OutageScript{"dns.google", 1, 2});
  auto result = monitor::run_monitor(spec, 2);
  ASSERT_TRUE(result) << result.error();

  auto round = monitor::MonitorResult::from_json(result.value().to_json());
  ASSERT_TRUE(round) << round.error();
  EXPECT_EQ(round.value().to_json().dump(0), result.value().to_json().dump(0));

  // evaluate_result on the decoded series re-derives the same SLOs/events.
  monitor::MonitorResult re = round.value();
  re.slos.clear();
  re.events.clear();
  monitor::evaluate_result(re);
  EXPECT_EQ(re.to_json().dump(0), result.value().to_json().dump(0));
}

TEST(Monitor, PrometheusExposition) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.epochs = 2;
  auto result = monitor::run_monitor(spec, 1);
  ASSERT_TRUE(result) << result.error();

  const std::string text = monitor::to_prometheus(result.value().series);
  EXPECT_NE(text.find("# TYPE ednsm_monitor_queries_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("ednsm_monitor_queries_total{"), std::string::npos);
  EXPECT_NE(text.find("vantage=\"ec2-ohio\""), std::string::npos);
  EXPECT_NE(text.find("resolver=\"dns.google\""), std::string::npos);
  EXPECT_NE(text.find("ednsm_monitor_response_ms{"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("ednsm_monitor_response_ms_count{"), std::string::npos);
  // Deterministic: same series, same bytes.
  EXPECT_EQ(text, monitor::to_prometheus(result.value().series));
}

TEST(Monitor, DashboardRendersSelfContainedHtml) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.epochs = 4;
  spec.outages.push_back(monitor::OutageScript{"dns.google", 1, 3});
  auto result = monitor::run_monitor(spec, 2);
  ASSERT_TRUE(result) << result.error();

  const std::string html = web::render_monitor_dashboard(result.value());
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("Availability heatmap"), std::string::npos);
  EXPECT_NE(html.find("latency bands"), std::string::npos);
  EXPECT_NE(html.find("Event timeline"), std::string::npos);
  EXPECT_NE(html.find("dns.google"), std::string::npos);
  EXPECT_NE(html.find("outage"), std::string::npos);
  // Self-contained: no external fetches.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html, web::render_monitor_dashboard(result.value()));
}

TEST(Monitor, RejectsInvalidInputs) {
  monitor::MonitorSpec spec = small_monitor_spec();
  EXPECT_FALSE(monitor::run_monitor(spec, 0));
  spec.base.resolvers.clear();
  EXPECT_FALSE(monitor::run_monitor(spec, 1));
}

// SLO boundary semantics on hand-built series: the outage threshold is a
// strict less-than, windows containing epoch 0 have exact inclusive bounds,
// and flap events bracket the first and last transition exactly.

TEST(Slo, AvailabilityAtOutageThresholdIsNotOutage) {
  // The outage test is a strict less-than. Exercise the boundary with a
  // dyadic threshold (0.25 = 1/4) so "exactly at the threshold" is exact in
  // floating point — 1 - 9/10.0 lands one ULP below 0.10 and would make the
  // default threshold a false boundary probe.
  monitor::SloConfig config;
  config.outage_availability = 0.25;
  obs::TimeSeries ts(1);
  add_epoch(ts, 0, 4, 3, 50.0);  // availability exactly 0.25: NOT an outage
  add_epoch(ts, 1, 4, 4, 50.0);  // 0.0: outage
  add_epoch(ts, 2, 4, 0, 50.0);

  const auto slos = monitor::evaluate_slos(ts, config, {"v1"}, {"r1"}, "DoH", 3);
  ASSERT_EQ(slos.size(), 3u);
  EXPECT_DOUBLE_EQ(slos[0].availability, 0.25);
  EXPECT_EQ(slos[0].state, "degraded");  // below the tier floor, above outage
  EXPECT_DOUBLE_EQ(slos[1].availability, 0.0);
  EXPECT_EQ(slos[1].state, "outage");
}

TEST(Slo, DegradationWindowStartingAtEpochZero) {
  monitor::SloConfig config;  // window_epochs = 3
  obs::TimeSeries ts(1);
  add_epoch(ts, 0, 10, 5, 50.0);  // 0.5 availability: degrades its windows
  add_epoch(ts, 1, 10, 0, 50.0);
  add_epoch(ts, 2, 10, 0, 50.0);
  add_epoch(ts, 3, 10, 0, 50.0);

  const auto slos = monitor::evaluate_slos(ts, config, {"v1"}, {"r1"}, "DoH", 4);
  ASSERT_EQ(slos.size(), 4u);
  // Epoch 0's failures stay in the rolling window until epoch 2 (inclusive).
  EXPECT_EQ(slos[0].state, "degraded");
  EXPECT_EQ(slos[1].state, "degraded");
  EXPECT_EQ(slos[2].state, "degraded");
  EXPECT_EQ(slos[3].state, "healthy");

  const auto events = monitor::detect_events(slos, config);
  ASSERT_EQ(events.size(), 1u) << monitor::events_to_json(events).dump(2);
  EXPECT_EQ(events[0].type, "degradation");
  EXPECT_EQ(events[0].start_epoch, 0);
  EXPECT_EQ(events[0].end_epoch, 2);
}

TEST(Events, BackToBackFlapsBracketFirstAndLastTransition) {
  monitor::SloConfig config;
  config.window_epochs = 1;  // each epoch judged alone: crisp state per epoch
  obs::TimeSeries ts(1);
  for (int epoch = 0; epoch < 6; ++epoch) {
    // Alternate total outage and full health back to back.
    add_epoch(ts, epoch, 10, epoch % 2 == 0 ? 10 : 0, 50.0);
  }

  const auto slos = monitor::evaluate_slos(ts, config, {"v1"}, {"r1"}, "DoH", 6);
  ASSERT_EQ(slos.size(), 6u);
  for (int epoch = 0; epoch < 6; ++epoch) {
    EXPECT_EQ(slos[static_cast<std::size_t>(epoch)].state,
              epoch % 2 == 0 ? "outage" : "healthy")
        << "epoch " << epoch;
  }

  const auto events = monitor::detect_events(slos, config);
  std::vector<const monitor::MonitorEvent*> flaps;
  std::vector<const monitor::MonitorEvent*> outages;
  for (const monitor::MonitorEvent& e : events) {
    if (e.type == "flap") flaps.push_back(&e);
    if (e.type == "outage") outages.push_back(&e);
  }
  // Three single-epoch outages, each a maximal run with exact bounds.
  ASSERT_EQ(outages.size(), 3u) << monitor::events_to_json(events).dump(2);
  for (std::size_t i = 0; i < outages.size(); ++i) {
    EXPECT_EQ(outages[i]->start_epoch, static_cast<int>(2 * i));
    EXPECT_EQ(outages[i]->end_epoch, static_cast<int>(2 * i));
  }
  // One flap: five transitions, bracketed by the first (epoch 1) and last
  // (epoch 5) state change.
  ASSERT_EQ(flaps.size(), 1u) << monitor::events_to_json(events).dump(2);
  EXPECT_EQ(flaps[0]->transitions, 5);
  EXPECT_EQ(flaps[0]->start_epoch, 1);
  EXPECT_EQ(flaps[0]->end_epoch, 5);
}

TEST(Prom, HostileResolverNameLabelsAreEscaped) {
  obs::TimeSeries ts(1);
  // Quote, backslash, and newline in a label value must all be escaped per
  // the Prometheus text exposition spec.
  const std::string hostile = "ev\"il\\res\nolver";
  ts.add_counter(monitor::kMetricQueries, "v\"1", hostile, "DoH", 0, 3);

  const std::string text = monitor::to_prometheus(ts);
  EXPECT_NE(text.find("resolver=\"ev\\\"il\\\\res\\nolver\""), std::string::npos) << text;
  EXPECT_NE(text.find("vantage=\"v\\\"1\""), std::string::npos) << text;
  // The raw (unescaped) value must not survive anywhere in the exposition:
  // an embedded newline would split a sample line in two.
  EXPECT_EQ(text.find(hostile), std::string::npos) << text;
}

TEST(Prom, RuntimeStaleGaugeFlagsLaggards) {
  auto beat = [](std::size_t k, const char* status, std::uint64_t updated) {
    obs::RuntimeHeartbeat h;
    h.shard_k = k;
    h.shard_n = 3;
    h.status = status;
    h.updated_unix_ms = updated;
    return h;
  };
  const std::vector<obs::RuntimeHeartbeat> fleet = {
      beat(0, "running", 10'000),  // lags the fleet by 90 s: stale
      beat(1, "running", 100'000),
      beat(2, "done", 5'000),  // terminal shards are never stale
  };

  EXPECT_EQ(monitor::fleet_latest_update_ms(fleet), 100'000u);
  EXPECT_EQ(monitor::fleet_latest_update_ms({}), 0u);
  EXPECT_TRUE(monitor::heartbeat_is_stale(fleet[0], 100'000, 50'000));
  // The threshold is a strict greater-than: a lag of exactly stale_after_ms
  // is still fresh.
  EXPECT_FALSE(monitor::heartbeat_is_stale(fleet[0], 100'000, 90'000));
  EXPECT_FALSE(monitor::heartbeat_is_stale(fleet[1], 100'000, 50'000));
  EXPECT_FALSE(monitor::heartbeat_is_stale(fleet[2], 100'000, 50'000));

  const std::string text = monitor::to_prometheus(fleet, 50'000);
  EXPECT_NE(text.find("# TYPE ednsm_runtime_stale gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("ednsm_runtime_stale{shard=\"0/3\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("ednsm_runtime_stale{shard=\"1/3\"} 0"), std::string::npos) << text;
  EXPECT_NE(text.find("ednsm_runtime_stale{shard=\"2/3\"} 0"), std::string::npos) << text;

  // Without a threshold the gauge is absent entirely.
  EXPECT_EQ(monitor::to_prometheus(fleet).find("ednsm_runtime_stale"), std::string::npos);
}

// Diagnosis engine: re-derive evidence for the scripted outage and attribute.

TEST(Diagnose, ScriptedOutageAttributedToResolverOutage) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.outages.push_back(monitor::OutageScript{"dns.google", 2, 4});
  auto result = monitor::run_monitor(spec, 2);
  ASSERT_TRUE(result) << result.error();

  auto report = monitor::diagnose_events(result.value(), 2);
  ASSERT_TRUE(report) << report.error();
  ASSERT_EQ(report.value().diagnoses.size(), result.value().events.size());

  const monitor::Diagnosis* outage = nullptr;
  for (const monitor::Diagnosis& d : report.value().diagnoses) {
    if (d.event.type == "outage") {
      ASSERT_EQ(outage, nullptr) << "expected exactly one outage diagnosis";
      outage = &d;
    }
  }
  ASSERT_NE(outage, nullptr);
  EXPECT_EQ(outage->event.resolver, "dns.google");
  EXPECT_EQ(outage->event.start_epoch, 2);
  EXPECT_EQ(outage->event.end_epoch, 3);

  // Every query in the scripted window failed at connect.
  EXPECT_EQ(outage->dominant_stage, "connect");
  EXPECT_GT(outage->stages.connect, 0u);
  EXPECT_EQ(outage->stages.total(), outage->window.failures);
  EXPECT_DOUBLE_EQ(outage->window.availability, 0.0);

  // Baseline covers the healthy epochs before the event and was clean.
  EXPECT_EQ(outage->baseline_from, 0);
  EXPECT_EQ(outage->baseline_to, 1);
  EXPECT_GT(outage->baseline.queries, 0u);
  EXPECT_GT(outage->baseline.availability, 0.9);

  // The spec has one vantage, so the blast radius is single-vantage.
  EXPECT_EQ(outage->scope.classification, "single-vantage");
  EXPECT_EQ(outage->scope.vantages_observed, 1);
  ASSERT_EQ(outage->scope.affected_vantages.size(), 1u);
  EXPECT_EQ(outage->scope.affected_vantages[0], "ec2-ohio");

  // Top-ranked verdict: resolver outage, backed by the connect failures.
  ASSERT_FALSE(outage->verdicts.empty());
  EXPECT_EQ(outage->verdicts[0].cause, "resolver-outage");
  EXPECT_GT(outage->verdicts[0].score, 0.5);
  EXPECT_EQ(outage->verdicts[0].evidence, outage->stages.connect + outage->stages.timeout);
  for (std::size_t i = 1; i < outage->verdicts.size(); ++i) {
    EXPECT_GE(outage->verdicts[0].score, outage->verdicts[i].score);
  }

  // Exemplars cite concrete failed queries inside the window, with flight
  // recorder refs naming the resolver.
  ASSERT_FALSE(outage->exemplars.empty());
  for (const obs::Exemplar& x : outage->exemplars) {
    EXPECT_FALSE(x.ok);
    EXPECT_GE(x.epoch, 2);
    EXPECT_LE(x.epoch, 3);
    EXPECT_EQ(x.failure_stage, "connect");
    EXPECT_NE(x.flight_ref.find("dns.google"), std::string::npos) << x.flight_ref;
  }

  // Plain-text rendering mentions the verdict.
  const std::string text = monitor::render_diagnosis_report(report.value());
  EXPECT_NE(text.find("resolver-outage"), std::string::npos) << text;
  EXPECT_NE(text.find("dns.google"), std::string::npos);
}

TEST(Diagnose, ReportByteIdenticalAcrossThreadCounts) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.outages.push_back(monitor::OutageScript{"dns.google", 2, 4});
  auto result = monitor::run_monitor(spec, 2);
  ASSERT_TRUE(result) << result.error();

  auto one = monitor::diagnose_events(result.value(), 1);
  auto many = monitor::diagnose_events(result.value(), 8);
  ASSERT_TRUE(one) << one.error();
  ASSERT_TRUE(many) << many.error();
  EXPECT_EQ(one.value().to_json().dump(0), many.value().to_json().dump(0));
}

TEST(Diagnose, ReportCodecRoundTripsAndChecksVersion) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.outages.push_back(monitor::OutageScript{"dns.google", 2, 4});
  auto result = monitor::run_monitor(spec, 2);
  ASSERT_TRUE(result) << result.error();
  auto report = monitor::diagnose_events(result.value(), 2);
  ASSERT_TRUE(report) << report.error();

  auto round = monitor::DiagnosisReport::from_json(report.value().to_json());
  ASSERT_TRUE(round) << round.error();
  EXPECT_EQ(round.value().to_json().dump(0), report.value().to_json().dump(0));

  core::Json j = report.value().to_json();
  j.as_object()["version"] = core::Json(99);
  EXPECT_FALSE(monitor::DiagnosisReport::from_json(j));
}

TEST(Diagnose, RejectsInvalidInputs) {
  monitor::MonitorSpec spec = small_monitor_spec();
  auto result = monitor::run_monitor(spec, 1);
  ASSERT_TRUE(result) << result.error();

  EXPECT_FALSE(monitor::diagnose_events(result.value(), 0));
  monitor::DiagnoseOptions opts;
  opts.baseline_epochs = 0;
  EXPECT_FALSE(monitor::diagnose_events(result.value(), 1, opts));
}

TEST(Diagnose, DashboardRendersDiagnosesSection) {
  monitor::MonitorSpec spec = small_monitor_spec();
  spec.outages.push_back(monitor::OutageScript{"dns.google", 2, 4});
  auto result = monitor::run_monitor(spec, 2);
  ASSERT_TRUE(result) << result.error();
  auto report = monitor::diagnose_events(result.value(), 2);
  ASSERT_TRUE(report) << report.error();

  const std::string html =
      web::render_monitor_dashboard(result.value(), &report.value());
  EXPECT_NE(html.find("Diagnoses"), std::string::npos);
  EXPECT_NE(html.find("resolver-outage"), std::string::npos);
  // Still self-contained with the extra section.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  // Without a report the dashboard is unchanged from the single-arg overload.
  EXPECT_EQ(web::render_monitor_dashboard(result.value(), nullptr),
            web::render_monitor_dashboard(result.value()));
}

}  // namespace
