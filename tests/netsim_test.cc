#include <gtest/gtest.h>

#include "geo/geodb.h"
#include "netsim/event_queue.h"
#include "netsim/network.h"
#include <cmath>
#include <algorithm>

#include "netsim/rng.h"

namespace ednsm::netsim {
namespace {

// ---- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalMedian) {
  Rng rng(29);
  std::vector<double> xs(100001);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(xs[50000], std::exp(1.0), 0.08);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f1_again = base.fork(1);
  Rng f2 = base.fork(2);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());  // same key -> same stream
  Rng f1b = base.fork(1);
  EXPECT_NE(f1b.next_u64(), f2.next_u64());
}

// ---- event queue ----------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(std::chrono::milliseconds(30), [&] { order.push_back(3); });
  q.schedule(std::chrono::milliseconds(10), [&] { order.push_back(1); });
  q.schedule(std::chrono::milliseconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(q.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime(std::chrono::milliseconds(30)));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(std::chrono::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(std::chrono::milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run_until_idle();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule(std::chrono::milliseconds(1), recurse);
  };
  q.schedule(std::chrono::milliseconds(1), recurse);
  q.run_until_idle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), SimTime(std::chrono::milliseconds(5)));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.schedule(std::chrono::milliseconds(10), [&] { ++count; });
  q.schedule(std::chrono::milliseconds(20), [&] { ++count; });
  q.schedule(std::chrono::milliseconds(30), [&] { ++count; });
  EXPECT_EQ(q.run_until(SimTime(std::chrono::milliseconds(20))), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), SimTime(std::chrono::milliseconds(20)));
}

// ---- network ---------------------------------------------------------------------

struct World {
  EventQueue queue;
  Network net{queue, Rng(1234)};
  IpAddr a, b;

  World() {
    a = net.attach("a", geo::city::kChicago, AccessLinkModel::datacenter());
    b = net.attach("b", geo::city::kFrankfurt, AccessLinkModel::datacenter());
  }
};

TEST(Network, AddressesAreDistinct) {
  World w;
  EXPECT_NE(w.a, w.b);
  EXPECT_EQ(w.net.label_of(w.a).value(), "a");
  EXPECT_FALSE(w.net.label_of(IpAddr{12345}).has_value());
}

TEST(Network, DatagramDeliveryRespectsPropagation) {
  World w;
  std::optional<SimTime> delivered_at;
  const Endpoint dst{w.b, 53};
  w.net.bind(dst, [&](const Datagram& d) {
    delivered_at = w.queue.now();
    EXPECT_EQ(d.payload, util::to_bytes("ping"));
    EXPECT_EQ(d.src.port, 9999);
  });
  w.net.send({{w.a, 9999}, dst, util::to_bytes("ping")});
  w.queue.run_until_idle();
  ASSERT_TRUE(delivered_at.has_value());
  // Chicago->Frankfurt one-way floor is ~62 ms (6970 km * 1.8 / 200).
  EXPECT_GT(to_ms(*delivered_at), 55.0);
  EXPECT_LT(to_ms(*delivered_at), 120.0);
}

TEST(Network, UnboundDestinationCountsUnroutable) {
  World w;
  w.net.send({{w.a, 1}, {w.b, 53}, util::to_bytes("x")});
  w.queue.run_until_idle();
  EXPECT_EQ(w.net.stats().datagrams_unroutable + w.net.stats().datagrams_dropped, 1u);
}

TEST(Network, UnbindStopsDelivery) {
  World w;
  int received = 0;
  const Endpoint dst{w.b, 53};
  w.net.bind(dst, [&](const Datagram&) { ++received; });
  w.net.unbind(dst);
  w.net.send({{w.a, 1}, dst, util::to_bytes("x")});
  w.queue.run_until_idle();
  EXPECT_EQ(received, 0);
}

TEST(Network, PingReturnsRtt) {
  World w;
  std::optional<SimDuration> rtt;
  w.net.ping(w.a, w.b, std::chrono::seconds(3), [&](auto r) { rtt = r; });
  w.queue.run_until_idle();
  ASSERT_TRUE(rtt.has_value());
  EXPECT_GT(to_ms(*rtt), 110.0);  // ~2x one-way floor
  EXPECT_LT(to_ms(*rtt), 220.0);
}

TEST(Network, PingRespectsIcmpPolicy) {
  World w;
  w.net.set_icmp_responder(w.b, false);
  bool called = false;
  std::optional<SimDuration> rtt;
  w.net.ping(w.a, w.b, std::chrono::milliseconds(500), [&](auto r) {
    called = true;
    rtt = r;
  });
  w.queue.run_until_idle();
  EXPECT_TRUE(called);
  EXPECT_FALSE(rtt.has_value());
  // The callback fires at the timeout, not before.
  EXPECT_EQ(w.queue.now(), SimTime(std::chrono::milliseconds(500)));
}

TEST(Network, QuirkAddsBaseDelay) {
  World w;
  PathQuirk quirk;
  quirk.extra_base_ms = 100.0;
  w.net.set_quirk(w.a, w.b, quirk);
  std::optional<SimDuration> rtt;
  w.net.ping(w.a, w.b, std::chrono::seconds(5), [&](auto r) { rtt = r; });
  w.queue.run_until_idle();
  ASSERT_TRUE(rtt.has_value());
  EXPECT_GT(to_ms(*rtt), 310.0);  // 2 x (62 + 100)
}

TEST(Network, LossyPathDropsSomeDatagrams) {
  EventQueue queue;
  Network net(queue, Rng(5));
  AccessLinkModel lossy = AccessLinkModel::datacenter();
  lossy.loss_probability = 0.5;
  const IpAddr a = net.attach("a", geo::city::kChicago, lossy);
  const IpAddr b = net.attach("b", geo::city::kChicago, AccessLinkModel::datacenter());
  int received = 0;
  net.bind({b, 1}, [&](const Datagram&) { ++received; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) net.send({{a, 2}, {b, 1}, {}});
  queue.run_until_idle();
  EXPECT_GT(received, n / 2 - 150);
  EXPECT_LT(received, n / 2 + 150);
}

TEST(Network, PathModelFloor) {
  World w;
  const PathModel& p = w.net.path(w.a, w.b);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(p.sample_one_way_ms(rng), p.floor_ms());
  }
}

TEST(Network, ResidentialAccessAddsLatencyAndJitter) {
  EventQueue queue;
  Network net(queue, Rng(6));
  const IpAddr home =
      net.attach("home", geo::city::kChicago, AccessLinkModel::residential());
  const IpAddr dc = net.attach("dc", geo::city::kChicago, AccessLinkModel::datacenter());
  const IpAddr dc2 = net.attach("dc2", geo::city::kChicago, AccessLinkModel::datacenter());

  auto median_rtt = [&](IpAddr src, IpAddr dst) {
    std::vector<double> rtts;
    for (int i = 0; i < 201; ++i) {
      net.ping(src, dst, std::chrono::seconds(10),
               [&](auto r) { if (r) rtts.push_back(to_ms(*r)); });
    }
    queue.run_until_idle();
    std::nth_element(rtts.begin(), rtts.begin() + static_cast<long>(rtts.size() / 2),
                     rtts.end());
    return rtts[rtts.size() / 2];
  };

  const double home_rtt = median_rtt(home, dc);
  const double dc_rtt = median_rtt(dc2, dc);
  EXPECT_GT(home_rtt, dc_rtt + 8.0);  // ~2x 6ms last-mile minus noise
}

TEST(AccessLink, BurstsProduceHeavyTail) {
  AccessLinkModel m = AccessLinkModel::residential();
  Rng rng(77);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = m.sample_delay_ms(rng);
  std::sort(xs.begin(), xs.end());
  const double p50 = xs[xs.size() / 2];
  const double p999 = xs[static_cast<std::size_t>(0.999 * static_cast<double>(xs.size()))];
  EXPECT_GT(p999, p50 * 2.0);  // bursty tail
}

}  // namespace
}  // namespace ednsm::netsim
