// Observability layer tests: tracer ring semantics, span guards, metrics
// registry and merge, Chrome-trace export, the campaign-level determinism
// guarantees (merged trace byte-identical across thread counts; tracing never
// perturbs the simulation), failure_stage codec behavior, and the flight
// recorder rendering.
#include <gtest/gtest.h>

#include <chrono>

#include "core/campaign.h"
#include "util/json.h"
#include "core/parallel_campaign.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/flight_recorder.h"

namespace {

using namespace ednsm;
using netsim::SimDuration;
using netsim::SimTime;

SimTime us(long long n) { return SimTime(std::chrono::microseconds(n)); }

// Minimal Clock for SpanGuard / the OBS_* macros: a settable SimTime plus a
// tracer pointer, standing in for netsim::EventQueue.
struct FakeClock {
  obs::Tracer* tracer_ptr = nullptr;
  SimTime now_{0};
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_ptr; }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
};

core::MeasurementSpec small_spec() {
  core::MeasurementSpec spec;
  spec.resolvers = {"dns.google", "ordns.he.net", "doh.ffmuc.net"};
  spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt"};
  spec.rounds = 2;
  spec.seed = 99;
  return spec;
}

TEST(Tracer, DisabledRecordsNothing) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.instant("sub", "ev", us(10));
  t.complete("sub", "phase", us(0), SimDuration(std::chrono::microseconds(5)));
  EXPECT_EQ(t.emitted(), 0u);
  EXPECT_EQ(t.buffered(), 0u);
  const obs::TraceData data = t.drain();
  EXPECT_TRUE(data.events.empty());
}

TEST(Tracer, RecordsInstantAndComplete) {
  obs::Tracer t;
  t.enable();
  t.instant("resolver", "cache-hit", us(100));
  t.complete("client", "exchange", us(50), SimDuration(std::chrono::microseconds(25)));
  EXPECT_EQ(t.emitted(), 2u);
  obs::TraceData data = t.drain();
  ASSERT_EQ(data.events.size(), 2u);
  EXPECT_EQ(data.events[0].kind, obs::EventKind::Instant);
  EXPECT_EQ(data.events[0].ts, us(100));
  EXPECT_EQ(data.symbols.name(data.events[0].subsystem), "resolver");
  EXPECT_EQ(data.symbols.name(data.events[0].name), "cache-hit");
  EXPECT_EQ(data.events[1].kind, obs::EventKind::Complete);
  EXPECT_EQ(data.events[1].ts, us(50));
  EXPECT_EQ(data.events[1].dur, SimDuration(std::chrono::microseconds(25)));
  // Drain resets the buffer but keeps recording enabled.
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.buffered(), 0u);
}

TEST(Tracer, RingDropsOldest) {
  obs::Tracer t;
  t.enable(4);
  for (int i = 0; i < 6; ++i) t.instant("s", "e", us(i));
  EXPECT_EQ(t.emitted(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
  EXPECT_EQ(t.buffered(), 4u);
  const obs::TraceData data = t.drain();
  ASSERT_EQ(data.events.size(), 4u);
  // Oldest two (ts 0, 1) were overwritten; survivors come out in order.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(data.events[static_cast<std::size_t>(i)].ts, us(i + 2));
  EXPECT_EQ(data.dropped, 2u);
  EXPECT_EQ(data.emitted, 6u);
}

TEST(Tracer, SpanGuardPairsBeginEnd) {
  obs::Tracer t;
  t.enable();
  FakeClock clk;
  clk.tracer_ptr = &t;
  clk.now_ = us(10);
  {
    OBS_SPAN(clk, "core", "round");
    clk.now_ = us(75);
  }
  obs::TraceData data = t.drain();
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.events[0].kind, obs::EventKind::Complete);
  EXPECT_EQ(data.events[0].ts, us(10));
  EXPECT_EQ(data.events[0].dur, SimDuration(std::chrono::microseconds(65)));
  EXPECT_EQ(data.symbols.name(data.events[0].name), "round");
}

TEST(Tracer, MacrosNoOpWithoutTracerOrWhenDisabled) {
  FakeClock no_tracer;  // tracer() == nullptr: macros must not dereference
  OBS_EVENT(no_tracer, "s", "e");
  OBS_COMPLETE(no_tracer, "s", "e", us(0), SimDuration{0});
  { OBS_SPAN(no_tracer, "s", "e"); }

  obs::Tracer t;  // present but disabled
  FakeClock clk;
  clk.tracer_ptr = &t;
  OBS_EVENT(clk, "s", "e");
  { OBS_SPAN(clk, "s", "e"); }
  EXPECT_EQ(t.emitted(), 0u);
}

TEST(Metrics, CountersGaugesDistributions) {
  obs::Metrics m;
  m.add("netsim.datagrams_sent", 3);
  m.add("netsim.datagrams_sent");
  EXPECT_EQ(m.counter("netsim.datagrams_sent"), 4u);
  EXPECT_EQ(m.counter("never.registered"), 0u);

  m.set_gauge("campaign.shards", 2.0);
  EXPECT_DOUBLE_EQ(m.gauge("campaign.shards"), 2.0);

  m.observe("campaign.response_ms", 10.0);
  m.observe("campaign.response_ms", 30.0);
  const stats::Welford* d = m.distribution("campaign.response_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 20.0);
}

TEST(Metrics, MergeCombinesByName) {
  obs::Metrics a, b;
  a.add("x.count", 2);
  b.add("x.count", 5);
  b.add("y.count", 1);  // only in b; symbol ids differ between registries
  a.observe("lat_ms", 10.0);
  b.observe("lat_ms", 20.0);
  a.merge(b);
  EXPECT_EQ(a.counter("x.count"), 7u);
  EXPECT_EQ(a.counter("y.count"), 1u);
  const stats::Welford* d = a.distribution("lat_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 15.0);
}

TEST(Metrics, MergeWithEmptyShards) {
  // A shard that recorded nothing must be an identity element on both sides —
  // the parallel engine merges one registry per shard even when a shard's
  // vantage issued no queries.
  obs::Metrics populated;
  populated.add("x.count", 3);
  populated.set_gauge("g.shards", 2.0);
  populated.observe("lat_ms", 12.5);

  obs::Metrics empty;
  populated.merge(empty);
  EXPECT_EQ(populated.counter("x.count"), 3u);
  EXPECT_DOUBLE_EQ(populated.gauge("g.shards"), 2.0);
  ASSERT_NE(populated.distribution("lat_ms"), nullptr);
  EXPECT_EQ(populated.distribution("lat_ms")->count(), 1u);

  obs::Metrics target;
  target.merge(populated);
  EXPECT_EQ(target.counter("x.count"), 3u);
  ASSERT_NE(target.distribution("lat_ms"), nullptr);
  EXPECT_DOUBLE_EQ(target.distribution("lat_ms")->mean(), 12.5);

  obs::Metrics a, b;
  a.merge(b);  // both empty: still empty, jsonl has no lines
  EXPECT_TRUE(a.jsonl().empty());
}

TEST(Metrics, JsonlIsSortedAndParses) {
  obs::Metrics m;
  m.add("zz.last", 1);
  m.add("aa.first", 2);
  m.observe("mm.lat_ms", 4.5);
  const std::string jsonl = m.jsonl();
  // Every line parses as a JSON object with kind/name.
  std::size_t start = 0;
  std::vector<std::string> names;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const auto parsed = core::Json::parse(jsonl.substr(start, end - start));
    ASSERT_TRUE(parsed) << jsonl.substr(start, end - start);
    ASSERT_TRUE(parsed.value().at("name").is_string());
    names.push_back(parsed.value().at("name").as_string());
    start = end + 1;
  }
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(MergedTrace, ChromeJsonParsesAndFilters) {
  obs::Tracer t;
  t.enable();
  t.instant("resolver", "cache-hit", us(10));
  t.complete("client", "exchange", us(0), SimDuration(std::chrono::microseconds(7)));
  obs::MergedTrace merged;
  merged.add_shard("vantage/ec2-ohio", t.drain());
  EXPECT_EQ(merged.shard_count(), 1u);
  EXPECT_EQ(merged.total_events(), 2u);

  const auto parsed = core::Json::parse(merged.chrome_json());
  ASSERT_TRUE(parsed) << parsed.error();
  const core::JsonArray& events = parsed.value().at("traceEvents").as_array();
  std::size_t payload = 0, metadata = 0;
  for (const core::Json& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      ++metadata;
    } else {
      ASSERT_TRUE(ph == "X" || ph == "i") << ph;
      ++payload;
    }
  }
  EXPECT_EQ(payload, 2u);
  EXPECT_GE(metadata, 1u);  // at least the shard thread_name record

  // Subsystem filter: only the resolver event survives (plus metadata).
  const auto filtered = core::Json::parse(merged.chrome_json("resolver"));
  ASSERT_TRUE(filtered);
  std::size_t kept = 0;
  for (const core::Json& e : filtered.value().at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "M") {
      ++kept;
      EXPECT_EQ(e.at("cat").as_string(), "resolver");
    }
  }
  EXPECT_EQ(kept, 1u);
}

// The headline guarantee: the merged trace of a sharded campaign is a pure
// function of the spec — byte-identical JSON for any thread count.
TEST(CampaignTrace, MergedTraceByteIdenticalAcrossThreadCounts) {
  const core::MeasurementSpec spec = small_spec();
  core::CampaignObsOptions opts;
  opts.trace = true;
  core::CampaignObsData one, eight;
  const core::CampaignResult r1 = core::run_parallel_campaign(spec, 1, opts, &one);
  const core::CampaignResult r8 = core::run_parallel_campaign(spec, 8, opts, &eight);
  EXPECT_EQ(r1.to_json().dump(0), r8.to_json().dump(0));
  ASSERT_EQ(one.trace.shard_count(), spec.vantage_ids.size());
  EXPECT_GT(one.trace.total_events(), 0u);
  EXPECT_EQ(one.trace.chrome_json(), eight.trace.chrome_json());
}

// Tracing must never perturb the simulation: results with tracing on are
// byte-identical to the plain (no-obs) run.
TEST(CampaignTrace, TracingDoesNotPerturbResults) {
  const core::MeasurementSpec spec = small_spec();
  const core::CampaignResult plain = core::run_parallel_campaign(spec, 2);
  core::CampaignObsOptions opts;
  opts.trace = true;
  opts.metrics = true;
  core::CampaignObsData data;
  const core::CampaignResult traced = core::run_parallel_campaign(spec, 2, opts, &data);
  EXPECT_EQ(plain.to_json().dump(0), traced.to_json().dump(0));
  EXPECT_FALSE(data.metrics.empty());
  EXPECT_EQ(data.metrics.counter("campaign.records"), plain.records.size());
}

TEST(CampaignTrace, MetricsMatchAcrossThreadCounts) {
  const core::MeasurementSpec spec = small_spec();
  core::CampaignObsOptions opts;
  opts.metrics = true;
  core::CampaignObsData one, four;
  (void)core::run_parallel_campaign(spec, 1, opts, &one);
  (void)core::run_parallel_campaign(spec, 4, opts, &four);
  EXPECT_EQ(one.metrics.jsonl(), four.metrics.jsonl());
}

TEST(FailureStage, DeriveMapping) {
  EXPECT_EQ(core::derive_failure_stage("connect-refused"), "connect");
  EXPECT_EQ(core::derive_failure_stage("connect-timeout"), "connect");
  EXPECT_EQ(core::derive_failure_stage("bootstrap-failure"), "connect");
  EXPECT_EQ(core::derive_failure_stage("tls-failure"), "handshake");
  EXPECT_EQ(core::derive_failure_stage("http-error"), "query");
  EXPECT_EQ(core::derive_failure_stage("malformed"), "query");
  EXPECT_EQ(core::derive_failure_stage("timeout"), "timeout");
  EXPECT_EQ(core::derive_failure_stage("something-new"), "");
}

TEST(FailureStage, JsonRoundTripAndLegacyDerivation) {
  core::ResultRecord r;
  r.vantage = "ec2-ohio";
  r.resolver = "dns.google";
  r.domain = "google.com";
  r.ok = false;
  r.error_class = "tls-failure";
  r.failure_stage = "handshake";
  const core::Json j = r.to_json();
  ASSERT_TRUE(j.at("failure_stage").is_string());
  const auto back = core::ResultRecord::from_json(j);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().failure_stage, "handshake");

  // A file written before failure_stage existed: reader derives it from
  // error_class instead of leaving it empty.
  core::JsonObject legacy = j.as_object();
  legacy.erase("failure_stage");
  const auto derived = core::ResultRecord::from_json(core::Json(std::move(legacy)));
  ASSERT_TRUE(derived);
  EXPECT_EQ(derived.value().failure_stage, "handshake");

  // Successful records never emit the field.
  core::ResultRecord ok_rec = r;
  ok_rec.ok = true;
  ok_rec.error_class.clear();
  ok_rec.failure_stage.clear();
  ok_rec.rcode = "NOERROR";
  EXPECT_TRUE(ok_rec.to_json().at("failure_stage").is_null());
}

TEST(FlightRecorder, RendersSlowestQueriesAndBreakdown) {
  const core::CampaignResult result = core::run_parallel_campaign(small_spec(), 2);
  ASSERT_FALSE(result.records.empty());
  const std::string report = report::render_flight_recorder(result, 5);
  EXPECT_NE(report.find("Slowest"), std::string::npos) << report;
  EXPECT_NE(report.find("exchange"), std::string::npos) << report;
  // Deterministic: rendering twice gives the same bytes.
  EXPECT_EQ(report, report::render_flight_recorder(result, 5));
  // Top-1 is a prefix-sized subset: fewer queries rendered, never more.
  const std::string top1 = report::render_slowest_queries(result, 1);
  const std::string top5 = report::render_slowest_queries(result, 5);
  EXPECT_LT(top1.size(), top5.size());
}

TEST(FlightRecorder, EqualDurationsTieBreakOnVantageResolverRound) {
  // Three records with identical durations, inserted in the reverse of the
  // (vantage, resolver, round) order the listing must produce. Regression:
  // the sort used to fall back to insertion order for equal durations, so a
  // file with non-canonical record order rendered a different top-N.
  core::CampaignResult result;
  const auto rec = [](const char* vantage, const char* resolver, int round) {
    core::ResultRecord r;
    r.vantage = vantage;
    r.resolver = resolver;
    r.round = round;
    r.domain = "example.com";
    r.ok = true;
    r.rcode = "NOERROR";
    r.response_ms = 120.0;
    r.exchange_ms = 120.0;
    return r;
  };
  result.records.push_back(rec("v-b", "res-a", 0));
  result.records.push_back(rec("v-a", "res-b", 1));
  result.records.push_back(rec("v-a", "res-a", 2));

  const std::string listing = report::render_slowest_queries(result, 3);
  const std::size_t first = listing.find("v-a -> res-a");
  const std::size_t second = listing.find("v-a -> res-b");
  const std::size_t third = listing.find("v-b -> res-a");
  ASSERT_NE(first, std::string::npos) << listing;
  ASSERT_NE(second, std::string::npos) << listing;
  ASSERT_NE(third, std::string::npos) << listing;
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
}

// Attribution primitives: the pure aggregations monitor/diagnose argues from.

obs::QueryEvidence ev_row(const char* vantage, const char* domain, int epoch, int round, bool ok,
                          const char* stage, double response_ms) {
  obs::QueryEvidence e;
  e.vantage = vantage;
  e.domain = domain;
  e.epoch = epoch;
  e.round = round;
  e.ok = ok;
  e.response_ms = response_ms;
  e.failure_stage = stage;
  return e;
}

TEST(Attribution, CountStagesInclusiveWindowAndTaxonomy) {
  std::vector<obs::QueryEvidence> rows;
  rows.push_back(ev_row("v1", "a.com", 1, 0, false, "connect", 0.0));    // outside window
  rows.push_back(ev_row("v1", "a.com", 2, 0, false, "connect", 0.0));
  rows.push_back(ev_row("v1", "b.com", 2, 1, false, "timeout", 0.0));
  rows.push_back(ev_row("v1", "c.com", 3, 0, false, "handshake", 0.0));
  rows.push_back(ev_row("v1", "d.com", 3, 1, false, "martian", 0.0));    // unknown -> other
  rows.push_back(ev_row("v1", "e.com", 3, 1, true, "", 12.0));           // success not counted
  rows.push_back(ev_row("v1", "a.com", 4, 0, false, "query", 0.0));      // outside window

  const obs::StageBreakdown b = obs::count_stages(rows, 2, 3);
  EXPECT_EQ(b.connect, 1u);
  EXPECT_EQ(b.timeout, 1u);
  EXPECT_EQ(b.handshake, 1u);
  EXPECT_EQ(b.other, 1u);
  EXPECT_EQ(b.query, 0u);
  EXPECT_EQ(b.total(), 4u);
  // Four-way tie: taxonomy order puts connect first.
  EXPECT_EQ(b.dominant(), "connect");

  // Empty and inverted windows are default-constructed: no failures, no stage.
  EXPECT_EQ(obs::count_stages(rows, 10, 20).total(), 0u);
  EXPECT_EQ(obs::count_stages(rows, 3, 2).total(), 0u);
  EXPECT_EQ(obs::count_stages(rows, 10, 20).dominant(), "");
}

TEST(Attribution, ProfilePhasesMediansOverSuccesses) {
  std::vector<obs::QueryEvidence> rows;
  for (int i = 0; i < 3; ++i) {
    obs::QueryEvidence e = ev_row("v1", "a.com", 1, i, true, "", 10.0 * (i + 1));
    e.tcp_ms = 1.0 * (i + 1);
    e.exchange_ms = 5.0 * (i + 1);
    e.reused = (i == 0);
    rows.push_back(e);
  }
  rows.push_back(ev_row("v1", "b.com", 1, 3, false, "timeout", 0.0));

  const obs::PhaseProfile p = obs::profile_phases(rows, 1, 1);
  EXPECT_EQ(p.queries, 4u);
  EXPECT_EQ(p.failures, 1u);
  EXPECT_DOUBLE_EQ(p.availability, 0.75);
  EXPECT_DOUBLE_EQ(p.reused_fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.response_ms, 20.0);  // median of {10, 20, 30}
  EXPECT_DOUBLE_EQ(p.tcp_ms, 2.0);
  EXPECT_DOUBLE_EQ(p.exchange_ms, 10.0);

  // No queries in the window: the default profile (availability 1.0).
  const obs::PhaseProfile empty = obs::profile_phases(rows, 5, 9);
  EXPECT_EQ(empty.queries, 0u);
  EXPECT_DOUBLE_EQ(empty.availability, 1.0);
}

TEST(Attribution, PhaseDeltaIsWindowMinusBaseline) {
  obs::PhaseProfile base;
  base.availability = 1.0;
  base.response_ms = 40.0;
  base.tcp_ms = 5.0;
  base.reused_fraction = 0.5;
  obs::PhaseProfile win;
  win.availability = 0.25;
  win.response_ms = 100.0;
  win.tcp_ms = 20.0;
  win.reused_fraction = 0.75;

  const obs::PhaseDelta d = obs::phase_delta(base, win);
  EXPECT_DOUBLE_EQ(d.availability, -0.75);
  EXPECT_DOUBLE_EQ(d.response_ms, 60.0);
  EXPECT_DOUBLE_EQ(d.tcp_ms, 15.0);
  EXPECT_DOUBLE_EQ(d.reused_fraction, 0.25);
  EXPECT_DOUBLE_EQ(d.tls_ms, 0.0);
}

TEST(Attribution, PickExemplarsFailuresFirstThenSlowest) {
  std::vector<obs::QueryEvidence> rows;
  rows.push_back(ev_row("v1", "slow.com", 2, 0, true, "", 99.0));
  rows.push_back(ev_row("v1", "fast.com", 2, 0, true, "", 5.0));
  rows.push_back(ev_row("v2", "x.com", 3, 1, false, "connect", 0.0));
  rows.push_back(ev_row("v1", "y.com", 2, 1, false, "timeout", 0.0));
  rows.push_back(ev_row("v1", "z.com", 9, 0, false, "connect", 0.0));  // outside window

  const std::vector<obs::Exemplar> top = obs::pick_exemplars(rows, 2, 3, 3);
  ASSERT_EQ(top.size(), 3u);
  // Failures lead, earliest evidence first: (epoch, vantage, round, domain).
  EXPECT_FALSE(top[0].ok);
  EXPECT_EQ(top[0].domain, "y.com");
  EXPECT_FALSE(top[1].ok);
  EXPECT_EQ(top[1].domain, "x.com");
  // Then the slowest success.
  EXPECT_TRUE(top[2].ok);
  EXPECT_EQ(top[2].domain, "slow.com");
  EXPECT_DOUBLE_EQ(top[2].response_ms, 99.0);

  EXPECT_EQ(obs::pick_exemplars(rows, 2, 3, 2).size(), 2u);
  EXPECT_TRUE(obs::pick_exemplars(rows, 2, 3, 0).empty());
}

TEST(Attribution, AggregateCodecsRoundTrip) {
  obs::StageBreakdown b;
  b.connect = 3;
  b.timeout = 1;
  b.other = 2;
  auto b2 = obs::StageBreakdown::from_json(b.to_json());
  ASSERT_TRUE(b2) << b2.error();
  EXPECT_EQ(b2.value().to_json().dump(0), b.to_json().dump(0));

  obs::PhaseProfile p;
  p.queries = 7;
  p.failures = 2;
  p.availability = 5.0 / 7.0;
  p.reused_fraction = 0.4;
  p.response_ms = 33.5;
  p.tls_ms = 8.25;
  auto p2 = obs::PhaseProfile::from_json(p.to_json());
  ASSERT_TRUE(p2) << p2.error();
  EXPECT_EQ(p2.value().to_json().dump(0), p.to_json().dump(0));

  obs::PhaseDelta d;
  d.availability = -0.5;
  d.wait_ms = 12.0;
  auto d2 = obs::PhaseDelta::from_json(d.to_json());
  ASSERT_TRUE(d2) << d2.error();
  EXPECT_EQ(d2.value().to_json().dump(0), d.to_json().dump(0));

  obs::Exemplar x;
  x.vantage = "ec2-ohio";
  x.domain = "example.com";
  x.epoch = 4;
  x.round = 1;
  x.ok = false;
  x.failure_stage = "connect";
  x.error_class = "connect-refused";
  x.flight_ref = "epoch4/ec2-ohio/dns.google/r1/example.com";
  auto x2 = obs::Exemplar::from_json(x.to_json());
  ASSERT_TRUE(x2) << x2.error();
  EXPECT_EQ(x2.value().to_json().dump(0), x.to_json().dump(0));

  EXPECT_FALSE(obs::StageBreakdown::from_json(util::Json(1.0)));
  EXPECT_FALSE(obs::PhaseProfile::from_json(util::Json(1.0)));
  EXPECT_FALSE(obs::PhaseDelta::from_json(util::Json(1.0)));
  EXPECT_FALSE(obs::Exemplar::from_json(util::Json(1.0)));
}

}  // namespace
