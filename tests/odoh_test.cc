#include <gtest/gtest.h>

#include "client/doh.h"
#include "client/odoh.h"
#include "geo/geodb.h"
#include "resolver/odoh.h"
#include "resolver/server.h"

namespace ednsm::resolver {
namespace {

using netsim::AccessLinkModel;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;

TEST(ObliviousMessage, CodecRoundTrip) {
  ObliviousMessage m;
  m.target_hostname = "odoh-target.alekberg.net";
  m.payload = util::to_bytes("sealed-dns-query");
  const util::Bytes wire = m.encode();
  EXPECT_EQ(wire.size(), 1 + m.target_hostname.size() + 2 + m.payload.size() + kHpkeOverhead);
  auto decoded = ObliviousMessage::decode(wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value().target_hostname, m.target_hostname);
  EXPECT_EQ(decoded.value().payload, m.payload);
}

TEST(ObliviousMessage, DecodeRejectsTruncation) {
  ObliviousMessage m;
  m.target_hostname = "t.example";
  m.payload = util::to_bytes("x");
  util::Bytes wire = m.encode();
  wire.pop_back();
  EXPECT_FALSE(ObliviousMessage::decode(wire).has_value());
  EXPECT_FALSE(ObliviousMessage::decode(util::Bytes{3, 'a'}).has_value());
}

struct OdohWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(51)};
  IpAddr client_ip;
  std::unique_ptr<ResolverServer> target;
  std::unique_ptr<OdohRelay> relay;
  std::unique_ptr<transport::ConnectionPool> pool;

  OdohWorld() {
    ServerBehavior behavior;
    behavior.warm_cache_probability = 1.0;
    client_ip = net.attach("client", geo::city::kColumbusOhio,
                           AccessLinkModel::datacenter());
    // Target in New York, relay in Chicago: the relay detour is visible.
    target = std::make_unique<ResolverServer>(
        net, "odoh-target.example", AnycastSite{"New York", geo::city::kNewYork}, behavior);
    relay = std::make_unique<OdohRelay>(
        net, "relay.example", geo::city::kChicago,
        [this](std::string_view host) -> std::optional<IpAddr> {
          if (host == "odoh-target.example") return target->address();
          return std::nullopt;
        });
    pool = std::make_unique<transport::ConnectionPool>(net, client_ip);
  }

  client::QueryOutcome ask(const std::string& target_host,
                           client::QueryOptions options = {}) {
    client::OdohClient odoh(net, *pool, options);
    std::optional<client::QueryOutcome> out;
    odoh.query(relay->address(), "relay.example", target_host,
               dns::Name::parse("example.com").value(), dns::RecordType::A,
               [&](client::QueryOutcome o) { out = std::move(o); });
    queue.run_until_idle();
    EXPECT_TRUE(out.has_value());
    return *out;
  }
};

TEST(Odoh, ResolvesThroughRelay) {
  OdohWorld w;
  const auto outcome = w.ask("odoh-target.example");
  ASSERT_TRUE(outcome.ok) << (outcome.error ? outcome.error->detail : "");
  EXPECT_GT(outcome.answers.size(), 0u);
  EXPECT_EQ(w.relay->stats().forwarded, 1u);
  EXPECT_EQ(w.target->stats().doh_requests, 1u);
}

TEST(Odoh, RelayPathCostsMoreThanDirect) {
  OdohWorld w;
  const auto via_relay = w.ask("odoh-target.example");
  ASSERT_TRUE(via_relay.ok);

  client::DohClient direct(w.net, *w.pool, client::QueryOptions{});
  std::optional<client::QueryOutcome> direct_out;
  direct.query(w.target->address(), "odoh-target.example",
               dns::Name::parse("example.com").value(), dns::RecordType::A,
               [&](client::QueryOutcome o) { direct_out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(direct_out.has_value() && direct_out->ok);

  // The relay adds its own connection setup plus the extra hop.
  EXPECT_GT(netsim::to_ms(via_relay.timing.total),
            netsim::to_ms(direct_out->timing.total) + 5.0);
}

TEST(Odoh, UnknownTargetYields502) {
  OdohWorld w;
  const auto outcome = w.ask("no-such-target.example");
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error->error_class, client::QueryErrorClass::HttpError);
  EXPECT_EQ(outcome.http_status, 502);
  EXPECT_EQ(w.relay->stats().target_failures, 1u);
}

TEST(Odoh, RelayReusesUpstreamSessions) {
  OdohWorld w;
  client::QueryOptions options;
  options.reuse = transport::ReusePolicy::Keepalive;
  const auto first = w.ask("odoh-target.example", options);
  const auto second = w.ask("odoh-target.example", options);
  ASSERT_TRUE(first.ok && second.ok);
  // Second query: client->relay session reused AND relay->target session
  // reused, so it saves two connection setups.
  EXPECT_TRUE(second.timing.connection_reused);
  EXPECT_LT(netsim::to_ms(second.timing.total), 0.6 * netsim::to_ms(first.timing.total));
}

TEST(Odoh, TargetSeesRelayNotClient) {
  // Privacy property, testable in the simulator: all datagrams arriving at
  // the target during an ODoH exchange originate from the relay's address.
  OdohWorld w;
  // Intercept: wrap the target's location lookup via network stats — instead,
  // simply verify the relay forwarded and the client never opened a direct
  // connection to the target (the client pool has no session to it).
  (void)w.ask("odoh-target.example");
  EXPECT_EQ(w.relay->stats().forwarded, 1u);
  EXPECT_FALSE(w.pool->has_ticket({w.target->address(), netsim::kPortHttps},
                                  "odoh-target.example"));
  EXPECT_EQ(w.pool->live_sessions(), 1u);  // only the relay session
}

TEST(Odoh, RejectsWrongMediaType) {
  OdohWorld w;
  // Speak raw HTTP to the relay with a plain DoH body.
  std::optional<int> status;
  w.pool->acquire({w.relay->address(), netsim::kPortHttps}, "relay.example",
                  transport::ReusePolicy::None, {},
                  [&](Result<transport::ConnectionPool::Lease> lease) {
                    ASSERT_TRUE(lease.has_value());
                    auto* tls = lease.value().tls;
                    tls->on_data([&](util::Bytes data) {
                      auto resp = http::Response::decode(data);
                      if (resp) status = resp.value().status;
                    });
                    const dns::Message q = dns::make_query(
                        1, dns::Name::parse("x.com").value(), dns::RecordType::A);
                    tls->send(http::make_doh_request("relay.example", "/dns-query",
                                                     q.encode(), true)
                                  .encode());
                  });
  w.queue.run_until_idle();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, 415);
  EXPECT_EQ(w.relay->stats().malformed, 1u);
}

}  // namespace
}  // namespace ednsm::resolver
