// Sharded parallel campaign engine: determinism across thread counts,
// canonical merge order, seed derivation, and the (vantage, resolver) sample
// index that replaces linear record rescans.
#include <gtest/gtest.h>

#include <sstream>

#include "core/parallel_campaign.h"
#include "resolver/registry.h"

namespace ednsm::core {
namespace {

MeasurementSpec paper_spec(int rounds) {
  MeasurementSpec spec;
  for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
  spec.vantage_ids = {"home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul"};
  spec.rounds = rounds;
  spec.seed = 20250704;
  return spec;
}

MeasurementSpec small_spec() {
  MeasurementSpec spec;
  spec.resolvers = {"dns.google", "ordns.he.net", "doh.ffmuc.net"};
  spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt", "home-chicago-1"};
  spec.rounds = 3;
  spec.seed = 99;
  return spec;
}

std::string dump(const CampaignResult& r) {
  std::ostringstream os;
  r.write_json(os);
  return os.str();
}

TEST(ParallelCampaign, ShardSeedsAreStableAndDistinct) {
  const auto a = shard_seeds(7, 4);
  const auto b = shard_seeds(7, 4);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
  // Prefix property: growing the shard count never re-seeds earlier shards.
  const auto longer = shard_seeds(7, 8);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(longer[i], a[i]);
}

TEST(ParallelCampaign, ThreadCountNeverChangesPaperCampaignJson) {
  // The acceptance bar: --threads 4 output is byte-identical to --threads 1
  // for the paper campaign (full registry, the Fig. 2 vantage set).
  const MeasurementSpec spec = paper_spec(/*rounds=*/2);
  const std::string serial = dump(run_parallel_campaign(spec, 1));
  const std::string parallel = dump(run_parallel_campaign(spec, 4));
  EXPECT_EQ(serial, parallel);
  const std::string oversubscribed = dump(run_parallel_campaign(spec, 64));
  EXPECT_EQ(serial, oversubscribed);
}

TEST(ParallelCampaign, MergeIsRoundMajorThenVantageInSpecOrder) {
  const MeasurementSpec spec = small_spec();
  const CampaignResult result = run_parallel_campaign(spec, 2);
  ASSERT_EQ(result.records.size(), 3u * 3u * 3u * 3u);  // rounds x vantages x resolvers x domains
  ASSERT_EQ(result.pings.size(), 3u * 3u * 3u);

  auto vantage_index = [&](const std::string& v) {
    for (std::size_t i = 0; i < spec.vantage_ids.size(); ++i) {
      if (spec.vantage_ids[i] == v) return i;
    }
    return spec.vantage_ids.size();
  };
  for (std::size_t i = 1; i < result.records.size(); ++i) {
    const auto& prev = result.records[i - 1];
    const auto& cur = result.records[i];
    const auto prev_key = std::make_pair(prev.round, vantage_index(prev.vantage));
    const auto cur_key = std::make_pair(cur.round, vantage_index(cur.vantage));
    EXPECT_LE(prev_key, cur_key) << "record " << i << " out of canonical order";
  }
}

TEST(ParallelCampaign, MergedLedgerMatchesRecords) {
  const CampaignResult result = run_parallel_campaign(small_spec(), 3);
  std::uint64_t ok = 0, bad = 0;
  for (const auto& r : result.records) (r.ok ? ok : bad)++;
  EXPECT_EQ(result.availability.overall().successes, ok);
  EXPECT_EQ(result.availability.overall().errors, bad);
}

TEST(ParallelCampaign, SpecIsPreservedVerbatim) {
  const MeasurementSpec spec = small_spec();
  const CampaignResult result = run_parallel_campaign(spec, 2);
  EXPECT_EQ(result.spec.to_json().dump(), spec.to_json().dump());
}

TEST(ParallelCampaign, MatchesSingleVantageLegacyRunPerShard) {
  // Shard semantics are *defined* as "each vantage is its own single-vantage
  // campaign under its derived seed": check one shard against the legacy
  // runner configured that way.
  const MeasurementSpec spec = small_spec();
  const auto seeds = shard_seeds(spec.seed, spec.vantage_ids.size());
  const CampaignResult merged = run_parallel_campaign(spec, 2);

  MeasurementSpec shard1 = spec;
  shard1.vantage_ids = {spec.vantage_ids[1]};
  shard1.seed = seeds[1];
  SimWorld world(shard1.seed);
  const CampaignResult solo = CampaignRunner(world, shard1).run();

  std::vector<const ResultRecord*> merged_v1;
  for (const auto& r : merged.records) {
    if (r.vantage == spec.vantage_ids[1]) merged_v1.push_back(&r);
  }
  ASSERT_EQ(merged_v1.size(), solo.records.size());
  for (std::size_t i = 0; i < solo.records.size(); ++i) {
    EXPECT_EQ(merged_v1[i]->resolver, solo.records[i].resolver);
    EXPECT_EQ(merged_v1[i]->domain, solo.records[i].domain);
    EXPECT_DOUBLE_EQ(merged_v1[i]->response_ms, solo.records[i].response_ms);
  }
}

TEST(ParallelCampaign, SeedSweepIsDeterministicAcrossThreads) {
  const MeasurementSpec spec = small_spec();
  const auto serial = run_seed_sweep(spec, 3, 1);
  const auto parallel = run_seed_sweep(spec, 3, 2);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(dump(serial[i]), dump(parallel[i])) << "sweep " << i;
  }
  // Different derived seeds actually vary the samples.
  EXPECT_NE(dump(serial[0]), dump(serial[1]));
}

TEST(ParallelCampaign, InvalidSpecThrows) {
  MeasurementSpec bad = small_spec();
  bad.rounds = 0;
  EXPECT_THROW((void)run_parallel_campaign(bad, 2), std::invalid_argument);
  EXPECT_THROW((void)run_seed_sweep(bad, 2, 2), std::invalid_argument);
}

TEST(ParallelCampaign, UnknownVantagePropagatesFromWorkers) {
  MeasurementSpec bad = small_spec();
  bad.vantage_ids = {"ec2-ohio", "not-a-vantage"};
  EXPECT_THROW((void)run_parallel_campaign(bad, 2), std::out_of_range);
}

// ---- sample index -----------------------------------------------------------

TEST(PairSampleIndexTest, MatchesNaiveScan) {
  const CampaignResult result = run_parallel_campaign(small_spec(), 2);
  for (const std::string& v : result.spec.vantage_ids) {
    for (const std::string& host : result.spec.resolvers) {
      std::vector<double> naive_rt, naive_ping;
      for (const auto& r : result.records) {
        if (r.ok && r.vantage == v && r.resolver == host) naive_rt.push_back(r.response_ms);
      }
      for (const auto& p : result.pings) {
        if (p.ok && p.vantage == v && p.resolver == host) naive_ping.push_back(p.rtt_ms);
      }
      EXPECT_EQ(result.response_times(v, host), naive_rt) << v << "/" << host;
      EXPECT_EQ(result.ping_times(v, host), naive_ping) << v << "/" << host;
    }
  }
  EXPECT_TRUE(result.response_times("ec2-ohio", "no-such-resolver").empty());
  EXPECT_TRUE(result.response_times("no-such-vantage", "dns.google").empty());
}

TEST(PairSampleIndexTest, RebuildsAfterRecordsGrow) {
  CampaignResult result = run_parallel_campaign(small_spec(), 1);
  const std::size_t before = result.response_times("ec2-ohio", "dns.google").size();

  ResultRecord extra;
  extra.vantage = "ec2-ohio";
  extra.resolver = "dns.google";
  extra.domain = "example.com";
  extra.ok = true;
  extra.response_ms = 12.5;
  result.records.push_back(extra);
  const auto after = result.response_times("ec2-ohio", "dns.google");
  ASSERT_EQ(after.size(), before + 1);
  EXPECT_DOUBLE_EQ(after.back(), 12.5);
}

}  // namespace
}  // namespace ednsm::core
