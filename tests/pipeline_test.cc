// Pipeline vocabulary and the deterministic-merge contract: spec expansion,
// --shard k/N slicing (including the edge topologies the ISSUE calls out:
// empty vantage list, N greater than the plan count, the k = N-1 remainder
// slice, and merges containing empty shards), the ShardCollector merge, and
// the shard-file round trip that carries outcomes across processes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_campaign.h"
#include "core/shard_io.h"

namespace ednsm::core {
namespace {

MeasurementSpec small_spec() {
  MeasurementSpec spec;
  spec.resolvers = {"dns.google", "ordns.he.net", "doh.ffmuc.net"};
  spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt", "home-chicago-1"};
  spec.rounds = 2;
  spec.seed = 20260808;
  return spec;
}

std::string dump(const CampaignResult& r) {
  std::ostringstream os;
  r.write_json(os);
  return os.str();
}

TEST(Pipeline, SliceParseAcceptsWellFormed) {
  const auto s = ShardSlice::parse("2/4");
  ASSERT_TRUE(s.has_value()) << s.error();
  EXPECT_EQ(s.value().k, 2u);
  EXPECT_EQ(s.value().n, 4u);
  EXPECT_TRUE(s.value().valid());
  const auto solo = ShardSlice::parse("0/1");
  ASSERT_TRUE(solo.has_value()) << solo.error();
  EXPECT_EQ(solo.value().k, 0u);
  EXPECT_EQ(solo.value().n, 1u);
}

TEST(Pipeline, SliceParseRejectsMalformed) {
  for (const char* bad : {"", "3", "/4", "3/", "a/4", "3/b", "3/4/5", "4/4", "5/4", "1/0",
                          "-1/4", "1/-4", "1/4x"}) {
    EXPECT_FALSE(ShardSlice::parse(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(Pipeline, SliceBoundsBalancedContiguousPartition) {
  // 10 plans over 4 slices: base 2 with the first 10%4=2 slices taking one
  // extra -> sizes {3, 3, 2, 2}, contiguous and exhaustive.
  const std::size_t expected_sizes[] = {3, 3, 2, 2};
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const SliceBounds b = slice_bounds(10, {k, 4});
    EXPECT_EQ(b.begin, cursor) << "slice " << k;
    EXPECT_EQ(b.count(), expected_sizes[k]) << "slice " << k;
    cursor = b.end;
  }
  EXPECT_EQ(cursor, 10u);
}

TEST(Pipeline, SliceBoundsRemainderLandsOnEarlySlicesNotLast) {
  // k = N-1 gets the *base* share; the remainder never piles onto the tail.
  const SliceBounds last = slice_bounds(10, {3, 4});
  EXPECT_EQ(last.count(), 10u / 4u);
  const SliceBounds first = slice_bounds(10, {0, 4});
  EXPECT_EQ(first.count(), 10u / 4u + 1u);
}

TEST(Pipeline, SliceBoundsMoreShardsThanPlansYieldsEmptySlices) {
  // N > plan count is legal: the surplus slices are empty, not an error.
  std::size_t total = 0;
  for (std::size_t k = 0; k < 7; ++k) {
    const SliceBounds b = slice_bounds(3, {k, 7});
    EXPECT_LE(b.begin, b.end);
    if (k >= 3) {
      EXPECT_EQ(b.count(), 0u) << "slice " << k;
    }
    total += b.count();
  }
  EXPECT_EQ(total, 3u);
  // Degenerate but well-defined: zero plans means every slice is empty.
  EXPECT_EQ(slice_bounds(0, {0, 4}).count(), 0u);
}

TEST(Pipeline, ExpandSpecEmptyVantageListIsEmpty) {
  MeasurementSpec spec = small_spec();
  spec.vantage_ids.clear();
  EXPECT_TRUE(expand_spec(spec).empty());
}

TEST(Pipeline, ExpandSpecPreservesOrderAndDerivesSeeds) {
  const MeasurementSpec spec = small_spec();
  const auto plans = expand_spec(spec);
  const auto seeds = shard_seeds(spec.seed, spec.vantage_ids.size());
  ASSERT_EQ(plans.size(), spec.vantage_ids.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(plans[i].index, i);
    EXPECT_EQ(plans[i].vantage, spec.vantage_ids[i]);
    EXPECT_EQ(plans[i].seed, seeds[i]);
  }
}

TEST(Pipeline, SlicePlansKeepsGlobalIndices) {
  const auto plans = expand_spec(small_spec());
  const auto mine = slice_plans(plans, {1, 2});  // second half
  const SliceBounds b = slice_bounds(plans.size(), {1, 2});
  ASSERT_EQ(mine.size(), b.count());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].index, b.begin + i);
    EXPECT_EQ(mine[i].vantage, plans[b.begin + i].vantage);
  }
}

TEST(Pipeline, SpecFingerprintSeparatesSpecs) {
  const MeasurementSpec a = small_spec();
  MeasurementSpec b = a;
  EXPECT_EQ(spec_fingerprint(a), spec_fingerprint(b));
  b.seed += 1;
  EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
  MeasurementSpec c = a;
  c.vantage_ids.pop_back();
  EXPECT_NE(spec_fingerprint(a), spec_fingerprint(c));
}

TEST(Pipeline, CollectorRejectsOutOfRangeAndDuplicateIndices) {
  const MeasurementSpec spec = small_spec();
  const auto plans = expand_spec(spec);
  ShardCollector collector(spec, plans.size(), {});
  auto first = run_shard(spec, plans[0], {});
  ShardOutcome bad = first;
  bad.index = plans.size();  // out of range
  EXPECT_FALSE(collector.add(std::move(bad)).has_value());
  ASSERT_TRUE(collector.add(std::move(first)).has_value());
  auto again = run_shard(spec, plans[0], {});
  EXPECT_FALSE(collector.add(std::move(again)).has_value());  // duplicate
  EXPECT_EQ(collector.collected(), 1u);
  EXPECT_FALSE(collector.complete());
}

TEST(Pipeline, CollectorArrivalOrderNeverChangesTheMerge) {
  const MeasurementSpec spec = small_spec();
  const std::string reference = dump(run_parallel_campaign(spec, 1));
  const auto plans = expand_spec(spec);
  ShardCollector collector(spec, plans.size(), {});
  for (auto it = plans.rbegin(); it != plans.rend(); ++it) {  // reverse arrival
    ASSERT_TRUE(collector.add(run_shard(spec, *it, {})).has_value());
  }
  ASSERT_TRUE(collector.complete());
  EXPECT_EQ(dump(collector.finish(nullptr)), reference);
}

// The tentpole guarantee, at the unit level: simulate every `--shard k/N`
// process of several topologies (including one with more shards than plans,
// so some "processes" contribute nothing) and merge through ShardCollector —
// results, trace, and metrics must be byte-identical to the unsharded run.
TEST(Pipeline, AnyShardTopologyMergesByteIdentical) {
  const MeasurementSpec spec = small_spec();
  CampaignObsOptions obs;
  obs.trace = true;
  obs.metrics = true;
  CampaignObsData ref_obs;
  const std::string reference = dump(run_parallel_campaign(spec, 1, obs, &ref_obs));
  const auto plans = expand_spec(spec);

  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, plans.size() + 3}) {
    ShardCollector collector(spec, plans.size(), obs);
    for (std::size_t k = 0; k < n; ++k) {
      // Each slice is one simulated worker process.
      for (const ShardPlan& plan : slice_plans(plans, {k, n})) {
        ASSERT_TRUE(collector.add(run_shard(spec, plan, obs)).has_value());
      }
    }
    ASSERT_TRUE(collector.complete()) << "topology n=" << n;
    CampaignObsData merged_obs;
    EXPECT_EQ(dump(collector.finish(&merged_obs)), reference) << "topology n=" << n;
    EXPECT_EQ(merged_obs.trace.chrome_json(), ref_obs.trace.chrome_json()) << "n=" << n;
    EXPECT_EQ(merged_obs.metrics.jsonl(), ref_obs.metrics.jsonl()) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Shard-file round trip and corruption rejection.
// ---------------------------------------------------------------------------

TEST(ShardIo, HexRoundTrip) {
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeef},
                                ~std::uint64_t{0}}) {
    const std::string hex = u64_to_hex(v);
    EXPECT_EQ(hex.size(), 16u);
    const auto back = u64_from_hex(hex);
    ASSERT_TRUE(back.has_value()) << hex;
    EXPECT_EQ(back.value(), v);
  }
  EXPECT_FALSE(u64_from_hex("").has_value());
  EXPECT_FALSE(u64_from_hex("123").has_value());             // wrong width
  EXPECT_FALSE(u64_from_hex("00000000000000zz").has_value());  // non-hex
}

ShardFile make_shard_file(const MeasurementSpec& spec, const ShardSlice& slice,
                          const CampaignObsOptions& obs) {
  const auto plans = expand_spec(spec);
  ShardFile file;
  file.spec = spec;
  file.slice = slice;
  file.total_shards = plans.size();
  file.has_trace = obs.trace;
  file.has_metrics = obs.metrics;
  for (const ShardPlan& plan : slice_plans(plans, slice)) {
    file.outcomes.push_back(run_shard(spec, plan, obs));
  }
  return file;
}

TEST(ShardIo, JsonRoundTripIsExact) {
  CampaignObsOptions obs;
  obs.trace = true;
  obs.metrics = true;
  const ShardFile file = make_shard_file(small_spec(), {1, 2}, obs);
  const auto reloaded = ShardFile::from_json(file.to_json());
  ASSERT_TRUE(reloaded.has_value()) << reloaded.error();
  EXPECT_EQ(reloaded.value().to_json().dump(2), file.to_json().dump(2));
}

TEST(ShardIo, EmptySliceRoundTrips) {
  // A shard beyond the plan count carries zero outcomes but stays valid —
  // that is what lets N > #vantages topologies merge.
  const MeasurementSpec spec = small_spec();
  const ShardFile file = make_shard_file(spec, {5, 7}, {});
  EXPECT_TRUE(file.outcomes.empty());
  const auto reloaded = ShardFile::from_json(file.to_json());
  ASSERT_TRUE(reloaded.has_value()) << reloaded.error();
  EXPECT_TRUE(reloaded.value().validate().has_value());
}

TEST(ShardIo, FromJsonRejectsTampering) {
  const ShardFile file = make_shard_file(small_spec(), {0, 2}, {});
  {
    Json j = file.to_json();
    j.as_object()["magic"] = "not-a-shard";
    EXPECT_FALSE(ShardFile::from_json(j).has_value());
  }
  {
    Json j = file.to_json();
    j.as_object()["version"] = ShardFile::kVersion + 1;
    EXPECT_FALSE(ShardFile::from_json(j).has_value());
  }
  {
    Json j = file.to_json();
    j.as_object()["spec_fingerprint"] = u64_to_hex(0);  // fingerprint/spec mismatch
    EXPECT_FALSE(ShardFile::from_json(j).has_value());
  }
  {
    Json j = file.to_json();
    j.as_object()["total_shards"] = 99;  // inconsistent with the embedded spec
    EXPECT_FALSE(ShardFile::from_json(j).has_value());
  }
  {
    Json j = file.to_json();
    j.as_object()["slice"].as_object()["k"] = 9;  // k >= n
    EXPECT_FALSE(ShardFile::from_json(j).has_value());
  }
  {
    Json j = file.to_json();
    // Drop one outcome: the file no longer covers its slice.
    j.as_object()["outcomes"].as_array().pop_back();
    EXPECT_FALSE(ShardFile::from_json(j).has_value());
  }
}

TEST(ShardIo, WriteLoadRoundTripAndTruncationRejected) {
  const std::string path = testing::TempDir() + "/ednsm_shard_io_test.json";
  const ShardFile file = make_shard_file(small_spec(), {1, 3}, {});
  ASSERT_TRUE(file.write(path).has_value());
  const auto loaded = ShardFile::load(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded.value().to_json().dump(2), file.to_json().dump(2));

  // Truncate the file: load must reject, never half-parse.
  const std::string full = file.to_json().dump(2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << full.substr(0, full.size() / 2);
  out.close();
  EXPECT_FALSE(ShardFile::load(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ednsm::core
