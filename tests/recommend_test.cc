#include <gtest/gtest.h>

#include "core/recommend.h"

namespace ednsm::core {
namespace {

// Build a synthetic CampaignResult without running a campaign: recommendation
// logic is a pure function of records.
CampaignResult synthetic_result() {
  CampaignResult result;
  result.spec.resolvers = {"dns.google", "ordns.he.net", "doh.ffmuc.net",
                           "kronos.plan9-dns.com", "dns.quad9.net"};
  result.spec.vantage_ids = {"ec2-ohio"};

  auto add = [&](const std::string& host, std::vector<double> times, int errors) {
    for (double t : times) {
      ResultRecord r;
      r.vantage = "ec2-ohio";
      r.resolver = host;
      r.domain = "google.com";
      r.ok = true;
      r.response_ms = t;
      result.availability.record(r);
      result.records.push_back(std::move(r));
    }
    for (int i = 0; i < errors; ++i) {
      ResultRecord r;
      r.vantage = "ec2-ohio";
      r.resolver = host;
      r.domain = "google.com";
      r.ok = false;
      r.error_class = "connect-timeout";
      result.availability.record(r);
      result.records.push_back(std::move(r));
    }
  };

  add("dns.google", {30, 31, 29, 30, 32, 30, 31, 30}, 0);        // fast, clean
  add("ordns.he.net", {28, 29, 30, 28, 31, 29, 30, 28}, 0);      // slightly faster
  add("doh.ffmuc.net", {390, 400, 395, 392, 401, 388, 399, 394}, 0);  // too slow
  add("kronos.plan9-dns.com", {85, 88, 86, 84, 90, 87, 89, 85}, 4);   // 33% errors
  add("dns.quad9.net", {30, 30}, 0);                              // too few samples
  return result;
}

TEST(Recommend, RanksByScoreAndFilters) {
  const CampaignResult result = synthetic_result();
  const RecommendationReport report = recommend_resolvers(result, "ec2-ohio");

  ASSERT_EQ(report.ranked.size(), 2u);
  EXPECT_EQ(report.ranked[0].hostname, "ordns.he.net");  // best median
  EXPECT_EQ(report.ranked[1].hostname, "dns.google");
  EXPECT_LT(report.ranked[0].score, report.ranked[1].score);

  ASSERT_EQ(report.rejected.size(), 3u);
  std::map<std::string, RejectionReason> reasons;
  for (const Rejection& r : report.rejected) reasons[r.hostname] = r.reason;
  EXPECT_EQ(reasons["doh.ffmuc.net"], RejectionReason::MedianTooHigh);
  EXPECT_EQ(reasons["kronos.plan9-dns.com"], RejectionReason::TooUnreliable);
  EXPECT_EQ(reasons["dns.quad9.net"], RejectionReason::TooFewSamples);
}

TEST(Recommend, BestAlternativeSkipsMainstream) {
  const RecommendationReport report =
      recommend_resolvers(synthetic_result(), "ec2-ohio");
  const auto alt = report.best_alternative();
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->hostname, "ordns.he.net");
  EXPECT_FALSE(alt->mainstream);
}

TEST(Recommend, ExcludeMainstreamMode) {
  RecommendCriteria criteria;
  criteria.exclude_mainstream = true;
  const RecommendationReport report =
      recommend_resolvers(synthetic_result(), "ec2-ohio", criteria);
  for (const Recommendation& r : report.ranked) EXPECT_FALSE(r.mainstream);
  bool saw_excluded = false;
  for (const Rejection& r : report.rejected) {
    if (r.reason == RejectionReason::MainstreamExcluded) saw_excluded = true;
  }
  EXPECT_TRUE(saw_excluded);
}

TEST(Recommend, TailBarRejectsSpikyResolvers) {
  CampaignResult result;
  result.spec.resolvers = {"spiky.example"};
  result.spec.vantage_ids = {"v"};
  for (int i = 0; i < 10; ++i) {
    ResultRecord r;
    r.vantage = "v";
    r.resolver = "spiky.example";
    r.domain = "d";
    r.ok = true;
    r.response_ms = (i < 8) ? 20.0 : 900.0;  // good median, horrible tail
    result.availability.record(r);
    result.records.push_back(std::move(r));
  }
  const RecommendationReport report = recommend_resolvers(result, "v");
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected[0].reason, RejectionReason::TailTooHigh);
}

TEST(Recommend, ErrorRateMovesScore) {
  CampaignResult result;
  result.spec.resolvers = {"clean.example", "flaky.example"};
  result.spec.vantage_ids = {"v"};
  auto add = [&](const char* host, bool ok) {
    ResultRecord r;
    r.vantage = "v";
    r.resolver = host;
    r.domain = "d";
    r.ok = ok;
    r.response_ms = ok ? 25.0 : 0.0;
    if (!ok) r.error_class = "timeout";
    result.availability.record(r);
    result.records.push_back(std::move(r));
  };
  for (int i = 0; i < 30; ++i) add("clean.example", true);
  for (int i = 0; i < 30; ++i) add("flaky.example", true);
  add("flaky.example", false);  // ~3.2% errors: passes the bar, worse score
  const RecommendationReport report = recommend_resolvers(result, "v");
  ASSERT_EQ(report.ranked.size(), 2u);
  EXPECT_EQ(report.ranked[0].hostname, "clean.example");
}

TEST(Recommend, EndToEndOnRealCampaign) {
  SimWorld world(101);
  MeasurementSpec spec;
  spec.resolvers = {"dns.google", "ordns.he.net", "freedns.controld.com",
                    "doh.ffmuc.net", "dns.alidns.com"};
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 8;
  spec.seed = 101;
  const CampaignResult result = CampaignRunner(world, spec).run();

  const RecommendationReport report = recommend_resolvers(result, "ec2-ohio");
  ASSERT_GE(report.ranked.size(), 2u);
  // The distant unicast/Asia resolvers cannot pass the 100 ms bar from Ohio.
  for (const Recommendation& r : report.ranked) {
    EXPECT_NE(r.hostname, "doh.ffmuc.net");
    EXPECT_NE(r.hostname, "dns.alidns.com");
    EXPECT_LE(r.median_ms, 100.0);
  }
  EXPECT_TRUE(report.best_alternative().has_value());
}

TEST(Recommend, RejectionReasonNames) {
  EXPECT_EQ(to_string(RejectionReason::TooFewSamples), "too-few-samples");
  EXPECT_EQ(to_string(RejectionReason::TooUnreliable), "too-unreliable");
}

}  // namespace
}  // namespace ednsm::core
