#include <gtest/gtest.h>

#include <cmath>

#include "core/campaign.h"
#include "report/boxplot.h"
#include "report/decomposition.h"
#include "report/figures.h"
#include "report/table.h"

namespace ednsm::report {
namespace {

// ---- table ----------------------------------------------------------------------

TEST(Table, TextAlignment) {
  Table t({"Name", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  // Separator row of dashes present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"A", "B"});
  t.add_row({"x", "y"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| A | B |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(Table, TsvShape) {
  Table t({"A", "B"});
  t.add_row({"x", "y"});
  EXPECT_EQ(t.to_tsv(), "A\tB\nx\ty\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RowAccess) {
  Table t({"A"});
  t.add_row({"v"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 1u);
  EXPECT_EQ(t.row(0)[0], "v");
}

TEST(Fmt, FormatsAndHandlesNaN) {
  EXPECT_EQ(fmt(12.345, 1), "12.3");
  EXPECT_EQ(fmt(12.345, 0), "12");
  EXPECT_EQ(fmt(std::nan(""), 1), "-");
}

// ---- boxplot --------------------------------------------------------------------

TEST(BoxPlot, LineMarksLandmarks) {
  stats::BoxSummary s = stats::box_summary({100, 150, 200, 250, 300});
  const std::string line = render_box_line(s, 600.0, 60, '=');
  EXPECT_EQ(line.size(), 60u);
  EXPECT_NE(line.find('M'), std::string::npos);
  EXPECT_NE(line.find('['), std::string::npos);
  EXPECT_NE(line.find(']'), std::string::npos);
  // Median column proportional to 200/600 of the width.
  const auto m_at = line.find('M');
  EXPECT_NEAR(static_cast<double>(m_at), 200.0 / 600.0 * 59.0, 2.0);
}

TEST(BoxPlot, EmptySummaryRendersBlank) {
  const std::string line = render_box_line({}, 600.0, 40, '=');
  EXPECT_EQ(line, std::string(40, ' '));
}

TEST(BoxPlot, TruncatesBeyondMax) {
  stats::BoxSummary s = stats::box_summary({100, 200, 5000});
  const std::string line = render_box_line(s, 600.0, 40, '=');
  EXPECT_EQ(line.size(), 40u);  // nothing drawn out of bounds
}

TEST(BoxPlot, FullRenderIncludesLabelsAndLegend) {
  BoxRow row;
  row.label = "dns.example";
  row.bold = true;
  row.response = stats::box_summary({20, 30, 40});
  row.ping = stats::box_summary({5, 6, 7});
  const std::string out = render_boxplots({row});
  EXPECT_NE(out.find("*dns.example*"), std::string::npos);
  EXPECT_NE(out.find("med=30.0 ms"), std::string::npos);
  EXPECT_NE(out.find("ping=6.0 ms"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
}

TEST(BoxPlot, PinglessRowOmitsPingLine) {
  BoxRow row;
  row.label = "no-ping.example";
  row.response = stats::box_summary({20, 30, 40});
  const std::string out = render_boxplots({row});
  EXPECT_EQ(out.find("ping="), std::string::npos);
}

// ---- figures over a real (small) campaign -----------------------------------------

class FigureTest : public ::testing::Test {
 protected:
  static const core::CampaignResult& result() {
    static const core::CampaignResult kResult = [] {
      core::SimWorld world(31);
      core::MeasurementSpec spec;
      spec.resolvers = {"dns.google", "security.cloudflare-dns.com", "dns.quad9.net",
                        "ordns.he.net", "freedns.controld.com", "doh.ffmuc.net",
                        "dns.brahma.world", "dns.alidns.com", "dns.twnic.tw"};
      spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt", "ec2-seoul"};
      spec.rounds = 12;
      spec.seed = 31;
      return core::CampaignRunner(world, spec).run();
    }();
    return kResult;
  }
};

TEST_F(FigureTest, FigureRowsSortedByMedian) {
  const auto rows = figure_rows(result(), "ec2-ohio", geo::Continent::NorthAmerica);
  ASSERT_GT(rows.size(), 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1].response.count == 0 || rows[i].response.count == 0) continue;
    EXPECT_LE(rows[i - 1].response.median, rows[i].response.median);
  }
}

TEST_F(FigureTest, FigureIncludesMainstreamBolded) {
  const auto rows = figure_rows(result(), "ec2-frankfurt", geo::Continent::Europe);
  bool any_bold = false;
  for (const BoxRow& r : rows) any_bold |= r.bold;
  EXPECT_TRUE(any_bold);
}

TEST_F(FigureTest, RenderFigureContainsTitleAndRows) {
  const std::string fig = render_figure(result(), "ec2-ohio",
                                        geo::Continent::NorthAmerica, "Figure 1");
  EXPECT_NE(fig.find("Figure 1"), std::string::npos);
  EXPECT_NE(fig.find("dns.google"), std::string::npos);
  EXPECT_NE(fig.find("ordns.he.net"), std::string::npos);
}

TEST_F(FigureTest, RemoteMedianTableShape) {
  const Table t = remote_median_table(result(), geo::Continent::Asia, "ec2-seoul",
                                      "ec2-frankfurt", 5);
  EXPECT_LE(t.rows(), 5u);
  ASSERT_GE(t.rows(), 1u);
  // Asia resolvers must be slower from Frankfurt than from Seoul.
  for (std::size_t i = 0; i < t.rows(); ++i) {
    const double near_ms = std::stod(t.row(i)[1]);
    const double far_ms = std::stod(t.row(i)[2]);
    EXPECT_LT(near_ms, far_ms) << t.row(i)[0];
  }
}

TEST_F(FigureTest, AvailabilityReportMentionsTotals) {
  const std::string report = availability_report(result());
  EXPECT_NE(report.find("successful responses:"), std::string::npos);
  EXPECT_NE(report.find("error rate:"), std::string::npos);
}

TEST_F(FigureTest, MaxMedianTableHasAllVantages) {
  const Table t = max_median_table(result());
  EXPECT_EQ(t.rows(), 3u);
}

TEST_F(FigureTest, NonmainstreamWinnersFromSeoulIncludesAlidns) {
  const auto winners = nonmainstream_winners(result(), "ec2-seoul");
  EXPECT_NE(std::find(winners.begin(), winners.end(), "dns.alidns.com"), winners.end());
}

// ---- phase decomposition ---------------------------------------------------------

// A small keepalive campaign so both connection states appear: the first
// query of each (vantage, resolver) pair is cold, the rest ride the pooled
// session and land in the warm population.
class DecompositionTest : public ::testing::Test {
 protected:
  static const core::CampaignResult& result() {
    static const core::CampaignResult kResult = [] {
      core::SimWorld world(47);
      core::MeasurementSpec spec;
      spec.resolvers = {"dns.google", "ordns.he.net"};
      spec.vantage_ids = {"ec2-ohio"};
      spec.rounds = 4;
      spec.seed = 47;
      spec.query_options.reuse = transport::ReusePolicy::Keepalive;
      return core::CampaignRunner(world, spec).run();
    }();
    return kResult;
  }
};

TEST_F(DecompositionTest, TableSplitsColdAndWarm) {
  const Table t = phase_decomposition_table(result());
  ASSERT_EQ(t.rows(), 2u);  // one vantage, both connection states
  EXPECT_EQ(t.row(0)[0], "ec2-ohio");
  EXPECT_EQ(t.row(0)[1], "cold");
  EXPECT_EQ(t.row(1)[1], "warm");
  // Cold queries pay connection setup; warm ones are pure exchange, so the
  // Setup column (Total - Exchange) is zero and Exchange equals Total.
  EXPECT_GT(std::stod(t.row(0)[8]), 0.0);
  EXPECT_DOUBLE_EQ(std::stod(t.row(1)[8]), 0.0);
  EXPECT_EQ(t.row(1)[7], t.row(1)[9]);
  // Both populations are non-empty and account for every successful record.
  std::size_t ok_records = 0;
  for (const core::ResultRecord& r : result().records) ok_records += r.ok ? 1 : 0;
  EXPECT_EQ(std::stoul(t.row(0)[2]) + std::stoul(t.row(1)[2]), ok_records);
}

TEST_F(DecompositionTest, ColdWarmRowsCarryBothDistributions) {
  const auto rows = cold_warm_rows(result());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "ec2-ohio (cold)");
  EXPECT_EQ(rows[1].label, "ec2-ohio (warm)");
  for (const BoxRow& r : rows) {
    EXPECT_GT(r.response.count, 0u);
    EXPECT_EQ(r.ping.count, r.response.count);  // exchange box over same records
  }
  // Cold medians sit above warm ones by at least the handshake cost.
  EXPECT_GT(rows[0].response.median, rows[1].response.median);
}

TEST_F(DecompositionTest, RenderedFigureLabelsBothStates) {
  const std::string fig = render_cold_warm_figure(result());
  EXPECT_NE(fig.find("Cold vs. warm"), std::string::npos);
  EXPECT_NE(fig.find("ec2-ohio (cold)"), std::string::npos);
  EXPECT_NE(fig.find("ec2-ohio (warm)"), std::string::npos);
}

TEST_F(FigureTest, DecompositionTableWithoutReuseIsAllCold) {
  const Table t = phase_decomposition_table(result());
  ASSERT_GE(t.rows(), 3u);  // at least one row per vantage
  for (std::size_t i = 0; i < t.rows(); ++i) EXPECT_EQ(t.row(i)[1], "cold");
}

TEST(BrowserMatrix, MatchesTable1) {
  const Table t = browser_matrix();
  EXPECT_EQ(t.rows(), 5u);       // five browsers
  EXPECT_EQ(t.columns(), 7u);    // name + six providers
  // Edge row: all six checked.
  int edge_checks = 0;
  for (std::size_t c = 1; c < 7; ++c) {
    if (t.row(2)[c] == "v") ++edge_checks;
  }
  EXPECT_EQ(edge_checks, 6);
  // Firefox row: exactly two.
  int firefox_checks = 0;
  for (std::size_t c = 1; c < 7; ++c) {
    if (t.row(1)[c] == "v") ++firefox_checks;
  }
  EXPECT_EQ(firefox_checks, 2);
}

}  // namespace
}  // namespace ednsm::report
