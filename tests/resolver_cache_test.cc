#include <gtest/gtest.h>

#include "resolver/cache.h"

namespace ednsm::resolver {
namespace {

using namespace std::chrono_literals;
using netsim::SimTime;

CacheKey key(const char* name) {
  return CacheKey{dns::Name::parse(name).value(), dns::RecordType::A, dns::RecordClass::IN};
}

dns::ResourceRecord record(const char* name, std::uint32_t ttl) {
  dns::ResourceRecord rr;
  rr.name = dns::Name::parse(name).value();
  rr.type = dns::RecordType::A;
  rr.ttl = ttl;
  dns::ARecord a;
  a.address = {192, 0, 2, 1};
  rr.rdata = a;
  return rr;
}

TEST(Cache, MissOnEmpty) {
  Cache cache;
  EXPECT_FALSE(cache.lookup(key("a.com"), SimTime(0)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, HitAfterInsert) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 300)}, SimTime(0));
  auto hit = cache.lookup(key("a.com"), SimTime(1s));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->answers.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, KeyIsCaseInsensitive) {
  Cache cache;
  cache.insert(key("A.COM"), dns::Rcode::NoError, {record("a.com", 300)}, SimTime(0));
  EXPECT_TRUE(cache.lookup(key("a.com"), SimTime(0)).has_value());
}

TEST(Cache, KeyDistinguishesType) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 300)}, SimTime(0));
  CacheKey aaaa = key("a.com");
  aaaa.qtype = dns::RecordType::AAAA;
  EXPECT_FALSE(cache.lookup(aaaa, SimTime(0)).has_value());
}

TEST(Cache, TtlDecaysOnHit) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 300)}, SimTime(0));
  auto hit = cache.lookup(key("a.com"), SimTime(100s));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->answers[0].ttl, 200u);
}

TEST(Cache, ExpiresAtTtl) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 300)}, SimTime(0));
  EXPECT_TRUE(cache.lookup(key("a.com"), SimTime(299s)).has_value());
  EXPECT_FALSE(cache.lookup(key("a.com"), SimTime(300s)).has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entry removed
}

TEST(Cache, MinTtlOfRrsetGoverns) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError,
               {record("a.com", 300), record("a.com", 60)}, SimTime(0));
  EXPECT_TRUE(cache.lookup(key("a.com"), SimTime(59s)).has_value());
  EXPECT_FALSE(cache.lookup(key("a.com"), SimTime(60s)).has_value());
}

TEST(Cache, ZeroTtlClampedToOneSecond) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 0)}, SimTime(0));
  EXPECT_TRUE(cache.lookup(key("a.com"), SimTime(500ms)).has_value());
  EXPECT_FALSE(cache.lookup(key("a.com"), SimTime(1s)).has_value());
}

TEST(Cache, NegativeCachingUsesNegativeTtl) {
  Cache cache;
  cache.insert(key("missing.com"), dns::Rcode::NxDomain, {}, SimTime(0), 30s);
  auto hit = cache.lookup(key("missing.com"), SimTime(29s));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rcode, dns::Rcode::NxDomain);
  EXPECT_TRUE(hit->answers.empty());
  EXPECT_FALSE(cache.lookup(key("missing.com"), SimTime(31s)).has_value());
}

TEST(Cache, LruEvictionAtCapacity) {
  Cache cache(3);
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 300)}, SimTime(0));
  cache.insert(key("b.com"), dns::Rcode::NoError, {record("b.com", 300)}, SimTime(0));
  cache.insert(key("c.com"), dns::Rcode::NoError, {record("c.com", 300)}, SimTime(0));
  // Touch a.com so b.com is the LRU victim.
  (void)cache.lookup(key("a.com"), SimTime(1s));
  cache.insert(key("d.com"), dns::Rcode::NoError, {record("d.com", 300)}, SimTime(0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.lookup(key("a.com"), SimTime(1s)).has_value());
  EXPECT_FALSE(cache.lookup(key("b.com"), SimTime(1s)).has_value());
  EXPECT_TRUE(cache.lookup(key("d.com"), SimTime(1s)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, ReinsertUpdatesEntry) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 10)}, SimTime(0));
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 1000)}, SimTime(5s));
  auto hit = cache.lookup(key("a.com"), SimTime(500s));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, ClearEmptiesEverything) {
  Cache cache;
  cache.insert(key("a.com"), dns::Rcode::NoError, {record("a.com", 300)}, SimTime(0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key("a.com"), SimTime(0)).has_value());
}

// Parameterized sweep: entries inserted at t=0 with TTL T are visible at
// T-1s and gone at T, for a range of TTLs.
class CacheTtlSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheTtlSweep, BoundaryExact) {
  const std::uint32_t ttl = GetParam();
  Cache cache;
  cache.insert(key("x.com"), dns::Rcode::NoError, {record("x.com", ttl)}, SimTime(0));
  EXPECT_TRUE(cache.lookup(key("x.com"), SimTime(std::chrono::seconds(ttl) - 1s)).has_value());
  EXPECT_FALSE(cache.lookup(key("x.com"), SimTime(std::chrono::seconds(ttl))).has_value());
}

INSTANTIATE_TEST_SUITE_P(Ttls, CacheTtlSweep, ::testing::Values(1, 2, 30, 300, 3600, 86400));

}  // namespace
}  // namespace ednsm::resolver
