#include <gtest/gtest.h>

#include "geo/geodb.h"
#include <cmath>

#include "resolver/anycast.h"
#include "resolver/upstream.h"

namespace ednsm::resolver {
namespace {

namespace c = geo::city;

// ---- anycast -------------------------------------------------------------------

TEST(Anycast, UnicastHasSingleSite) {
  const Deployment d = Deployment::unicast({"Munich", c::kMunich});
  EXPECT_FALSE(d.is_anycast());
  EXPECT_EQ(d.sites().size(), 1u);
  EXPECT_EQ(d.site_for(c::kSeoul).city, "Munich");
}

TEST(Anycast, NearestSiteWins) {
  const Deployment d = Deployment::anycast(global_anycast_sites());
  EXPECT_EQ(d.site_for(c::kColumbusOhio).city, "Chicago");
  EXPECT_EQ(d.site_for(c::kFrankfurt).city, "Frankfurt");
  EXPECT_EQ(d.site_for(c::kSeoul).city, "Seoul");
}

TEST(Anycast, GlobalFootprintServesSeoulLocally) {
  const Deployment d = Deployment::anycast(global_anycast_sites());
  const AnycastSite& site = d.site_for(c::kSeoul);
  EXPECT_LT(geo::great_circle_km(site.location, c::kSeoul), 1200.0);
}

TEST(Anycast, IspBackboneThinInAsia) {
  const Deployment d = Deployment::anycast(isp_backbone_sites());
  // Hurricane Electric's nearest PoP to Seoul is Tokyo, not Seoul.
  EXPECT_EQ(d.site_for(c::kSeoul).city, "Tokyo");
  // Dense in the US: Chicago client served from Chicago.
  EXPECT_EQ(d.site_for(c::kChicago).city, "Chicago");
}

TEST(Anycast, PrimarySiteIsFirst) {
  const Deployment d = Deployment::anycast({{"X", c::kParis}, {"Y", c::kTokyo}});
  EXPECT_EQ(d.primary_site().city, "X");
}

// ---- upstream ------------------------------------------------------------------

TEST(Upstream, LatencyWithinDepthBounds) {
  UpstreamModel m;
  m.depth_min = 2;
  m.depth_max = 2;
  m.authority_rtt_mu = 3.0;
  m.authority_rtt_sigma = 0.0;  // deterministic: exactly e^3 per hop
  netsim::Rng rng(5);
  const double lat = m.sample_latency_ms(rng);
  EXPECT_NEAR(lat, 2.0 * std::exp(3.0), 1e-6);
}

TEST(Upstream, DeeperRecursionIsSlowerOnAverage) {
  UpstreamModel shallow;
  shallow.depth_min = shallow.depth_max = 1;
  UpstreamModel deep;
  deep.depth_min = deep.depth_max = 3;
  netsim::Rng rng1(7), rng2(7);
  double s = 0, d = 0;
  for (int i = 0; i < 3000; ++i) {
    s += shallow.sample_latency_ms(rng1);
    d += deep.sample_latency_ms(rng2);
  }
  EXPECT_GT(d, 2.0 * s);
}

TEST(Upstream, ServfailFrequencyMatchesProbability) {
  UpstreamModel m;
  m.servfail_probability = 0.1;
  netsim::Rng rng(11);
  int fails = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) fails += sample_servfail(m, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.1, 0.01);
}

TEST(Upstream, SynthesizedAnswersAreDeterministic) {
  const dns::Name name = dns::Name::parse("google.com").value();
  const auto a = synthesize_answers(name, dns::RecordType::A);
  const auto b = synthesize_answers(name, dns::RecordType::A);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_GE(a[0].ttl, 300u);
  EXPECT_LT(a[0].ttl, 3900u);
}

TEST(Upstream, DifferentDomainsDifferentAnswers) {
  const auto a = synthesize_answers(dns::Name::parse("google.com").value(),
                                    dns::RecordType::A);
  const auto b = synthesize_answers(dns::Name::parse("amazon.com").value(),
                                    dns::RecordType::A);
  EXPECT_NE(a, b);
}

TEST(Upstream, AaaaAndTxtSupported) {
  const dns::Name name = dns::Name::parse("wikipedia.com").value();
  const auto aaaa = synthesize_answers(name, dns::RecordType::AAAA);
  ASSERT_EQ(aaaa.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<dns::AaaaRecord>(aaaa[0].rdata));
  const auto txt = synthesize_answers(name, dns::RecordType::TXT);
  ASSERT_EQ(txt.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<dns::TxtRecord>(txt[0].rdata));
}

TEST(Upstream, UnknownTypeYieldsNodata) {
  const auto answers = synthesize_answers(dns::Name::parse("x.com").value(),
                                          dns::RecordType::SOA);
  EXPECT_TRUE(answers.empty());
}

TEST(Upstream, AnswersRoundTripThroughWire) {
  const dns::Name name = dns::Name::parse("google.com").value();
  dns::Message q = dns::make_query(1, name, dns::RecordType::A);
  dns::Message resp = dns::make_response(q, dns::Rcode::NoError,
                                         synthesize_answers(name, dns::RecordType::A));
  auto decoded = dns::Message::decode(resp.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().answers, resp.answers);
}

}  // namespace
}  // namespace ednsm::resolver
