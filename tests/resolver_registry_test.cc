#include <gtest/gtest.h>

#include <set>

#include "resolver/browsers.h"
#include "resolver/registry.h"

namespace ednsm::resolver {
namespace {

using geo::Continent;

TEST(Registry, PopulationSizeMatchesAppendix) {
  // Appendix A.2 enumerates 75 hostnames.
  EXPECT_EQ(paper_resolver_list().size(), 75u);
}

TEST(Registry, HostnamesAreUnique) {
  std::set<std::string> seen;
  for (const ResolverSpec& s : paper_resolver_list()) {
    EXPECT_TRUE(seen.insert(s.hostname).second) << "duplicate: " << s.hostname;
  }
}

TEST(Registry, ContinentBreakdown) {
  int na = 0, eu = 0, asia = 0, oceania = 0, unknown = 0;
  for (const ResolverSpec& s : paper_resolver_list()) {
    switch (s.continent) {
      case Continent::NorthAmerica: ++na; break;
      case Continent::Europe: ++eu; break;
      case Continent::Asia: ++asia; break;
      case Continent::Oceania: ++oceania; break;
      case Continent::Unknown: ++unknown; break;
      default: break;
    }
  }
  // The paper reports 13 resolvers in Asia; our registry matches exactly.
  EXPECT_EQ(asia, 13);
  // NA and EU counts are close to the paper's 18/33 (see DESIGN.md).
  EXPECT_GT(na, 15);
  EXPECT_GT(eu, 25);
  EXPECT_EQ(oceania, 5);
  EXPECT_EQ(unknown, 3);
  EXPECT_EQ(na + eu + asia + oceania + unknown, 75);
}

TEST(Registry, MainstreamSetMatchesTable1Providers) {
  for (const std::string& host : mainstream_hostnames()) {
    Provider p;
    EXPECT_TRUE(provider_of_hostname(host, p)) << host;
  }
  // All Cloudflare/Google/Quad9/NextDNS registry entries are mainstream.
  for (const ResolverSpec& s : paper_resolver_list()) {
    Provider p;
    EXPECT_EQ(s.mainstream, provider_of_hostname(s.hostname, p)) << s.hostname;
  }
}

TEST(Registry, MainstreamAreGloballyAnycast) {
  for (const ResolverSpec& s : paper_resolver_list()) {
    if (!s.mainstream) continue;
    EXPECT_EQ(s.footprint, Footprint::GlobalAnycast) << s.hostname;
    EXPECT_GT(s.sites.size(), 10u) << s.hostname;
  }
}

TEST(Registry, KeyResolversPresent) {
  // The resolvers §4 names explicitly must exist with the right shape.
  const ResolverSpec* he = find_resolver("ordns.he.net");
  ASSERT_NE(he, nullptr);
  EXPECT_EQ(he->footprint, Footprint::IspBackbone);
  EXPECT_FALSE(he->mainstream);

  const ResolverSpec* controld = find_resolver("freedns.controld.com");
  ASSERT_NE(controld, nullptr);
  EXPECT_TRUE(controld->sites.size() > 1);

  const ResolverSpec* brahma = find_resolver("dns.brahma.world");
  ASSERT_NE(brahma, nullptr);
  EXPECT_EQ(brahma->continent, Continent::Europe);

  const ResolverSpec* alidns = find_resolver("dns.alidns.com");
  ASSERT_NE(alidns, nullptr);
  bool has_seoul_adjacent = false;
  for (const AnycastSite& site : alidns->sites) {
    if (geo::great_circle_km(site.location, geo::city::kSeoul) < 1500) {
      has_seoul_adjacent = true;
    }
  }
  EXPECT_TRUE(has_seoul_adjacent);

  EXPECT_EQ(find_resolver("no.such.resolver"), nullptr);
}

TEST(Registry, OdohTargetsAreMarked) {
  int odoh = 0;
  for (const ResolverSpec& s : paper_resolver_list()) {
    if (s.odoh_target) {
      ++odoh;
      EXPECT_NE(s.hostname.find("odoh-target"), std::string::npos);
    }
  }
  EXPECT_EQ(odoh, 4);
}

TEST(Registry, SomeResolversFilterIcmp) {
  int silent = 0;
  for (const ResolverSpec& s : paper_resolver_list()) {
    if (!s.icmp_responder) ++silent;
  }
  EXPECT_GT(silent, 2);
  EXPECT_LT(silent, 12);
}

TEST(Registry, QuirkedResolversFromPaper) {
  const ResolverSpec* ahadns = find_resolver("doh.la.ahadns.net");
  ASSERT_NE(ahadns, nullptr);
  ASSERT_FALSE(ahadns->quirks.empty());
  EXPECT_EQ(ahadns->quirks[0].vantage_prefix, "home");

  const ResolverSpec* twnic = find_resolver("dns.twnic.tw");
  ASSERT_NE(twnic, nullptr);
  ASSERT_FALSE(twnic->quirks.empty());
  EXPECT_GT(twnic->quirks[0].quirk.extra_base_ms, 0.0);

  const ResolverSpec* bebasid = find_resolver("antivirus.bebasid.com");
  ASSERT_NE(bebasid, nullptr);
  EXPECT_EQ(bebasid->quirks.size(), 2u);  // Ohio + Frankfurt
}

TEST(Registry, TierBehaviorsAreOrdered) {
  const ServerBehavior hyper = behavior_for_tier(OperatorTier::Hyperscale);
  const ServerBehavior managed = behavior_for_tier(OperatorTier::Managed);
  const ServerBehavior hobby = behavior_for_tier(OperatorTier::Hobbyist);
  EXPECT_LT(hyper.processing_mu, managed.processing_mu);
  EXPECT_LT(managed.processing_mu, hobby.processing_mu);
  EXPECT_LT(hyper.connect_drop_probability, hobby.connect_drop_probability);
  EXPECT_GT(hyper.warm_cache_probability, hobby.warm_cache_probability);
}

TEST(Registry, GeoDbMirrorsRegistry) {
  const geo::GeoDb db = build_geodb();
  EXPECT_EQ(db.size(), paper_resolver_list().size());
  auto google = db.lookup("dns.google");
  ASSERT_TRUE(google.has_value());
  EXPECT_EQ(google->continent, Continent::NorthAmerica);
  // "Unable to return a location" resolvers look absent, like GeoLite2.
  EXPECT_FALSE(db.lookup("chewbacca.meganerd.nl").has_value());
  EXPECT_FALSE(db.lookup("puredns.org").has_value());
}

// ---- Table 1 -------------------------------------------------------------------

TEST(Browsers, Table1RowsExact) {
  using B = Browser;
  using P = Provider;
  // Chrome: all but OpenDNS.
  EXPECT_TRUE(browser_offers(B::Chrome, P::Cloudflare));
  EXPECT_TRUE(browser_offers(B::Chrome, P::CleanBrowsing));
  EXPECT_FALSE(browser_offers(B::Chrome, P::OpenDNS));
  // Firefox: Cloudflare + NextDNS only.
  EXPECT_EQ(providers_of(B::Firefox).size(), 2u);
  EXPECT_TRUE(browser_offers(B::Firefox, P::NextDNS));
  EXPECT_FALSE(browser_offers(B::Firefox, P::Google));
  // Edge & Brave: all six.
  EXPECT_EQ(providers_of(B::Edge).size(), 6u);
  EXPECT_EQ(providers_of(B::Brave).size(), 6u);
  // Opera: Cloudflare + Google.
  EXPECT_EQ(providers_of(B::Opera).size(), 2u);
  EXPECT_TRUE(browser_offers(B::Opera, P::Google));
}

TEST(Browsers, ProviderOfHostname) {
  Provider p;
  ASSERT_TRUE(provider_of_hostname("dns9.quad9.net", p));
  EXPECT_EQ(p, Provider::Quad9);
  ASSERT_TRUE(provider_of_hostname("1dot1dot1dot1.cloudflare-dns.com", p));
  EXPECT_EQ(p, Provider::Cloudflare);
  EXPECT_FALSE(provider_of_hostname("ordns.he.net", p));
}

TEST(Browsers, Names) {
  EXPECT_EQ(to_string(Browser::Chrome), "Chrome");
  EXPECT_EQ(to_string(Provider::CleanBrowsing), "CleanBrowsing");
}

// ---- fleet ---------------------------------------------------------------------

TEST(Fleet, InstantiatesAllSites) {
  netsim::EventQueue queue;
  netsim::Network net(queue, netsim::Rng(3));
  ResolverFleet fleet(net, paper_resolver_list());
  // Every spec has >= 1 site; mainstream have many.
  EXPECT_GT(fleet.total_sites(), paper_resolver_list().size());
  EXPECT_EQ(fleet.sites_of("dns.google").size(), global_anycast_sites().size());
  EXPECT_EQ(fleet.sites_of("doh.ffmuc.net").size(), 1u);
  EXPECT_TRUE(fleet.sites_of("nonexistent").empty());
}

TEST(Fleet, AddressForPicksNearestSite) {
  netsim::EventQueue queue;
  netsim::Network net(queue, netsim::Rng(3));
  ResolverFleet fleet(net, paper_resolver_list());

  const auto from_seoul = fleet.address_for("dns.google", geo::city::kSeoul);
  ASSERT_TRUE(from_seoul.has_value());
  const auto from_chicago = fleet.address_for("dns.google", geo::city::kChicago);
  ASSERT_TRUE(from_chicago.has_value());
  EXPECT_NE(*from_seoul, *from_chicago);

  // Unicast: same address from everywhere.
  const auto ffmuc_a = fleet.address_for("doh.ffmuc.net", geo::city::kSeoul);
  const auto ffmuc_b = fleet.address_for("doh.ffmuc.net", geo::city::kChicago);
  ASSERT_TRUE(ffmuc_a.has_value());
  EXPECT_EQ(*ffmuc_a, *ffmuc_b);

  EXPECT_FALSE(fleet.address_for("nope", geo::city::kSeoul).has_value());
}

}  // namespace
}  // namespace ednsm::resolver
