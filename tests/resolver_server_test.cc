#include <gtest/gtest.h>

#include "client/do53.h"
#include "client/doh.h"
#include "client/dot.h"
#include "geo/geodb.h"
#include "resolver/server.h"

namespace ednsm::resolver {
namespace {

using netsim::AccessLinkModel;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;

struct ServerWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(15)};
  IpAddr client_ip;
  std::unique_ptr<ResolverServer> server;
  std::unique_ptr<transport::ConnectionPool> pool;

  explicit ServerWorld(ServerBehavior behavior = {}) {
    client_ip = net.attach("client", geo::city::kChicago, AccessLinkModel::datacenter());
    server = std::make_unique<ResolverServer>(net, "dns.example",
                                              AnycastSite{"Chicago", geo::city::kChicago},
                                              behavior);
    pool = std::make_unique<transport::ConnectionPool>(net, client_ip);
  }

  client::QueryOutcome query_doh(const char* domain, client::QueryOptions options = {}) {
    client::DohClient doh(net, *pool, options);
    std::optional<client::QueryOutcome> out;
    doh.query(server->address(), "dns.example", dns::Name::parse(domain).value(),
              dns::RecordType::A, [&](client::QueryOutcome o) { out = std::move(o); });
    queue.run_until_idle();
    EXPECT_TRUE(out.has_value());
    return *out;
  }
};

TEST(DotFraming, RoundTrip) {
  const util::Bytes msg = util::to_bytes("abcdef");
  const util::Bytes framed = dot_frame(msg);
  EXPECT_EQ(framed.size(), msg.size() + 2);
  auto messages = dot_unframe(framed);
  ASSERT_TRUE(messages.has_value());
  ASSERT_EQ(messages.value().size(), 1u);
  EXPECT_EQ(messages.value()[0], msg);
}

TEST(DotFraming, MultipleMessages) {
  util::Bytes two = dot_frame(util::to_bytes("one"));
  const util::Bytes second = dot_frame(util::to_bytes("second"));
  two.insert(two.end(), second.begin(), second.end());
  auto messages = dot_unframe(two);
  ASSERT_TRUE(messages.has_value());
  ASSERT_EQ(messages.value().size(), 2u);
  EXPECT_EQ(util::as_string(messages.value()[1]), "second");
}

TEST(DotFraming, RejectsTruncation) {
  util::Bytes framed = dot_frame(util::to_bytes("abc"));
  framed.pop_back();
  EXPECT_FALSE(dot_unframe(framed).has_value());
  EXPECT_FALSE(dot_unframe(util::Bytes{0x00}).has_value());
}

TEST(Server, AnswersDohH2Query) {
  ServerWorld w;
  const auto outcome = w.query_doh("example.com");
  ASSERT_TRUE(outcome.ok) << (outcome.error ? outcome.error->detail : "");
  EXPECT_EQ(outcome.rcode, dns::Rcode::NoError);
  EXPECT_GT(outcome.answers.size(), 0u);
  EXPECT_EQ(outcome.http_status, 200);
  EXPECT_EQ(w.server->stats().doh_requests, 1u);
}

TEST(Server, AnswersDohH1GetAndPost) {
  for (const bool post : {false, true}) {
    ServerWorld w;
    client::QueryOptions options;
    options.use_http2 = false;
    options.use_post = post;
    const auto outcome = w.query_doh("example.com", options);
    ASSERT_TRUE(outcome.ok) << "post=" << post;
    EXPECT_EQ(outcome.http_status, 200);
  }
}

TEST(Server, AnswersDotQuery) {
  ServerWorld w;
  client::DotClient dot(w.net, *w.pool, client::QueryOptions{});
  std::optional<client::QueryOutcome> out;
  dot.query(w.server->address(), "dns.example", dns::Name::parse("example.com").value(),
            dns::RecordType::A, [&](client::QueryOutcome o) { out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->ok) << (out->error ? out->error->detail : "");
  EXPECT_EQ(out->protocol, client::Protocol::DoT);
  EXPECT_EQ(w.server->stats().dot_requests, 1u);
}

TEST(Server, AnswersDo53Query) {
  ServerWorld w;
  client::Do53Client do53(w.net, w.client_ip, client::QueryOptions{});
  std::optional<client::QueryOutcome> out;
  do53.query(w.server->address(), dns::Name::parse("example.com").value(),
             dns::RecordType::A, [&](client::QueryOutcome o) { out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->ok);
  EXPECT_EQ(out->protocol, client::Protocol::Do53);
  EXPECT_EQ(w.server->stats().do53_requests, 1u);
  EXPECT_EQ(do53.inflight(), 0u);
}

TEST(Server, Do53IsFasterThanDoHCold) {
  ServerBehavior warm;
  warm.warm_cache_probability = 1.0;  // keep recursion latency out of the comparison
  ServerWorld w(warm);
  client::Do53Client do53(w.net, w.client_ip, client::QueryOptions{});
  double do53_ms = 0, doh_ms = 0;
  do53.query(w.server->address(), dns::Name::parse("example.com").value(),
             dns::RecordType::A,
             [&](client::QueryOutcome o) { do53_ms = netsim::to_ms(o.timing.total); });
  w.queue.run_until_idle();
  doh_ms = netsim::to_ms(w.query_doh("example.com").timing.total);
  EXPECT_LT(do53_ms, doh_ms);   // 1 RTT vs 3+ RTT
  EXPECT_GT(doh_ms, 2.0 * do53_ms);
}

TEST(Server, CacheHitsOnRepeatedQueries) {
  ServerBehavior b;
  b.warm_cache_probability = 0.0;  // force a real first miss
  ServerWorld w(b);
  (void)w.query_doh("example.com");
  (void)w.query_doh("example.com");
  (void)w.query_doh("example.com");
  EXPECT_EQ(w.server->stats().cache_misses, 1u);
  EXPECT_EQ(w.server->stats().cache_hits, 2u);
}

TEST(Server, CacheMissIsSlower) {
  ServerBehavior b;
  b.warm_cache_probability = 0.0;
  b.upstream.servfail_probability = 0.0;
  ServerWorld w(b);
  const auto miss = w.query_doh("example.com");
  const auto hit = w.query_doh("example.com");
  ASSERT_TRUE(miss.ok && hit.ok);
  EXPECT_GT(netsim::to_ms(miss.timing.total), netsim::to_ms(hit.timing.total) + 5.0);
}

TEST(Server, ServfailPathStallsAndReturnsServfail) {
  ServerBehavior b;
  b.warm_cache_probability = 0.0;
  b.upstream.servfail_probability = 1.0;
  ServerWorld w(b);
  client::QueryOptions options;
  options.timeout = std::chrono::seconds(10);
  const auto outcome = w.query_doh("example.com", options);
  ASSERT_TRUE(outcome.ok);  // a SERVFAIL is still a response
  EXPECT_EQ(outcome.rcode, dns::Rcode::ServFail);
  EXPECT_GT(netsim::to_ms(outcome.timing.total), b.upstream.servfail_stall_ms);
  EXPECT_EQ(w.server->stats().servfails, 1u);
}

TEST(Server, HttpErrorInjection) {
  ServerBehavior b;
  b.http_error_probability = 1.0;
  ServerWorld w(b);
  const auto outcome = w.query_doh("example.com");
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error->error_class, client::QueryErrorClass::HttpError);
  EXPECT_EQ(outcome.http_status, 503);
  EXPECT_EQ(w.server->stats().http_errors, 1u);
}

TEST(Server, ConnectRefusalInjection) {
  ServerBehavior b;
  b.connect_refuse_probability = 1.0;
  ServerWorld w(b);
  const auto outcome = w.query_doh("example.com");
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error->error_class, client::QueryErrorClass::ConnectRefused);
}

TEST(Server, ConnectDropLeadsToConnectTimeout) {
  ServerBehavior b;
  b.connect_drop_probability = 1.0;
  ServerWorld w(b);
  client::QueryOptions options;
  options.timeout = std::chrono::seconds(30);  // let SYN retries exhaust
  const auto outcome = w.query_doh("example.com", options);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error->error_class, client::QueryErrorClass::ConnectTimeout);
}

TEST(Server, TlsFailureInjection) {
  ServerBehavior b;
  b.tls_failure_probability = 1.0;
  ServerWorld w(b);
  const auto outcome = w.query_doh("example.com");
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error->error_class, client::QueryErrorClass::TlsFailure);
}

TEST(Server, TimeoutWhenServerStalls) {
  ServerBehavior b;
  b.warm_cache_probability = 0.0;
  b.upstream.servfail_probability = 1.0;
  b.upstream.servfail_stall_ms = 60000.0;
  ServerWorld w(b);
  client::QueryOptions options;
  options.timeout = std::chrono::seconds(2);
  const auto outcome = w.query_doh("example.com", options);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error->error_class, client::QueryErrorClass::Timeout);
  EXPECT_NEAR(netsim::to_ms(outcome.timing.total), 2000.0, 1.0);
}

TEST(Server, MalformedQueryGetsFormerr) {
  ServerWorld w;
  // Speak raw DoH: send garbage bytes as the DNS message.
  transport::ConnectionPool pool(w.net, w.client_ip);
  std::optional<int> status;
  util::Bytes response_body;
  pool.acquire({w.server->address(), netsim::kPortHttps}, "dns.example",
               transport::ReusePolicy::None, {},
               [&](Result<transport::ConnectionPool::Lease> lease) {
                 ASSERT_TRUE(lease.has_value());
                 auto* tls = lease.value().tls;
                 tls->on_data([&](util::Bytes data) {
                   auto resp = http::Response::decode(data);
                   ASSERT_TRUE(resp.has_value());
                   status = resp.value().status;
                   response_body = resp.value().body;
                 });
                 const util::Bytes garbage = {0xde, 0xad};
                 tls->send(http::make_doh_request("dns.example", "/dns-query", garbage,
                                                  /*post=*/true)
                               .encode());
               });
  w.queue.run_until_idle();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, 200);  // FORMERR is a DNS-level error, HTTP is fine
  auto msg = dns::Message::decode(response_body);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg.value().header.rcode, dns::Rcode::FormErr);
  EXPECT_EQ(w.server->stats().formerrs, 1u);
}

TEST(Server, WrongPathGets404) {
  ServerBehavior b;
  b.doh_path = "/custom-path";
  ServerWorld w(b);
  const auto outcome = w.query_doh("example.com");  // client uses /dns-query
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.http_status, 404);
}

TEST(Server, DisabledProtocolsNotBound) {
  ServerBehavior b;
  b.supports_do53 = false;
  ServerWorld w(b);
  client::Do53Client do53(w.net, w.client_ip, client::QueryOptions{});
  std::optional<client::QueryOutcome> out;
  do53.query(w.server->address(), dns::Name::parse("x.com").value(), dns::RecordType::A,
             [&](client::QueryOutcome o) { out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->ok);
  EXPECT_EQ(out->error->error_class, client::QueryErrorClass::Timeout);
}

TEST(Server, ExtraResponseDelayShiftsDnsNotPing) {
  ServerBehavior slow;
  slow.extra_response_ms = 50.0;
  ServerWorld w(slow);
  const auto outcome = w.query_doh("example.com");
  ASSERT_TRUE(outcome.ok);

  std::optional<netsim::SimDuration> rtt;
  w.net.ping(w.client_ip, w.server->address(), std::chrono::seconds(3),
             [&](auto r) { rtt = r; });
  w.queue.run_until_idle();
  ASSERT_TRUE(rtt.has_value());
  // DNS response >> ping because the 50 ms rides only on the DNS path.
  EXPECT_GT(netsim::to_ms(outcome.timing.total), netsim::to_ms(*rtt) + 45.0);
}

TEST(Server, ConnectionReuseSkipsHandshakes) {
  ServerWorld w;
  client::QueryOptions reuse;
  reuse.reuse = transport::ReusePolicy::Keepalive;
  client::DohClient doh(w.net, *w.pool, reuse);

  std::vector<client::QueryOutcome> outcomes;
  auto run_one = [&](const char* domain) {
    doh.query(w.server->address(), "dns.example", dns::Name::parse(domain).value(),
              dns::RecordType::A, [&](client::QueryOutcome o) { outcomes.push_back(o); });
    w.queue.run_until_idle();
  };
  run_one("example.com");
  run_one("example.com");
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].ok && outcomes[1].ok);
  EXPECT_FALSE(outcomes[0].timing.connection_reused);
  EXPECT_TRUE(outcomes[1].timing.connection_reused);
  // Warm query saves the TCP+TLS round trips: ~1 RTT vs ~3 RTT.
  EXPECT_LT(netsim::to_ms(outcomes[1].timing.total),
            0.6 * netsim::to_ms(outcomes[0].timing.total));
}

}  // namespace
}  // namespace ednsm::resolver
