// Runtime telemetry (src/obs/runtime.h): heartbeat/manifest codecs, the
// strict validators trace_check --heartbeat relies on, snapshot math under
// injected fake clocks, straggler detection, the campaign fold, and the
// crash-safe HeartbeatWriter. Everything here runs with deterministic clocks
// — the only wall-clock reads happen in production defaults, not in tests.
#include "obs/runtime.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace ednsm::obs {
namespace {

// Injectable fake clocks: tests set the globals, the telemetry reads them
// through plain function pointers (the ClockNs/ClockMs contract).
std::uint64_t g_fake_ns = 0;
std::uint64_t g_fake_ms = 0;
std::uint64_t fake_ns() { return g_fake_ns; }
std::uint64_t fake_ms() { return g_fake_ms; }

RuntimeHeartbeat sample_heartbeat() {
  RuntimeHeartbeat h;
  h.status = "running";
  h.spec_fingerprint = 0xdeadbeefcafef00dull;
  h.shard_k = 2;
  h.shard_n = 4;
  h.threads = 8;
  h.started_unix_ms = 1000;
  h.updated_unix_ms = 3500;
  h.elapsed_ms = 2500.0;
  h.plans_total = 40;
  h.plans_done = 10;
  h.collector_lag = 2;
  h.records = 120;
  h.bytes_encoded = 4096;
  h.completion = 0.25;
  h.plans_per_sec = 4.0;
  h.eta_ms = 7500.0;
  RuntimeStageSnapshot s;
  s.stage = "simulate";
  s.items_in = 12;
  s.items_out = 10;
  s.stall_spins = 3;
  s.stall_ns = 900;
  s.busy_ns = 1000000;
  s.max_queue_depth = 7;
  h.stages.push_back(s);
  return h;
}

RunManifest sample_manifest() {
  RunManifest m;
  m.spec_fingerprint = 0x0123456789abcdefull;
  m.seed = 42;
  m.shard_k = 1;
  m.shard_n = 4;
  m.total_shards = 40;
  m.plans = 10;
  m.threads = 4;
  m.status = "ok";
  m.started_unix_ms = 1000;
  m.finished_unix_ms = 6000;
  m.wall_ms = 5000.0;
  m.records = 300;
  m.pings = 30;
  m.bytes_encoded = 8192;
  RuntimeStageSnapshot s;
  s.stage = "collect";
  s.items_in = 10;
  s.items_out = 10;
  m.stages.push_back(s);
  return m;
}

TEST(RuntimeCodec, HeartbeatRoundTrip) {
  const RuntimeHeartbeat h = sample_heartbeat();
  auto parsed = RuntimeHeartbeat::heartbeat_from_json(h.heartbeat_json());
  ASSERT_TRUE(parsed) << parsed.error();
  const RuntimeHeartbeat& r = parsed.value();
  EXPECT_EQ(r.status, "running");
  EXPECT_EQ(r.spec_fingerprint, 0xdeadbeefcafef00dull);
  EXPECT_EQ(r.shard_k, 2u);
  EXPECT_EQ(r.shard_n, 4u);
  EXPECT_EQ(r.threads, 8);
  EXPECT_EQ(r.started_unix_ms, 1000u);
  EXPECT_EQ(r.updated_unix_ms, 3500u);
  EXPECT_DOUBLE_EQ(r.elapsed_ms, 2500.0);
  EXPECT_EQ(r.plans_total, 40u);
  EXPECT_EQ(r.plans_done, 10u);
  EXPECT_EQ(r.collector_lag, 2u);
  EXPECT_EQ(r.records, 120u);
  EXPECT_EQ(r.bytes_encoded, 4096u);
  EXPECT_DOUBLE_EQ(r.completion, 0.25);
  EXPECT_DOUBLE_EQ(r.plans_per_sec, 4.0);
  EXPECT_DOUBLE_EQ(r.eta_ms, 7500.0);
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_EQ(r.stages[0].stage, "simulate");
  EXPECT_EQ(r.stages[0].items_in, 12u);
  EXPECT_EQ(r.stages[0].max_queue_depth, 7u);
}

TEST(RuntimeCodec, ManifestRoundTrip) {
  const RunManifest m = sample_manifest();
  auto parsed = RunManifest::manifest_from_json(m.manifest_json());
  ASSERT_TRUE(parsed) << parsed.error();
  const RunManifest& r = parsed.value();
  EXPECT_EQ(r.spec_fingerprint, 0x0123456789abcdefull);
  EXPECT_EQ(r.seed, 42u);
  EXPECT_EQ(r.shard_k, 1u);
  EXPECT_EQ(r.shard_n, 4u);
  EXPECT_EQ(r.total_shards, 40u);
  EXPECT_EQ(r.plans, 10u);
  EXPECT_EQ(r.status, "ok");
  EXPECT_DOUBLE_EQ(r.wall_ms, 5000.0);
  EXPECT_EQ(r.pings, 30u);
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_EQ(r.stages[0].stage, "collect");
}

// Strict validation: each mutation of a valid document must be rejected with
// an error naming the offending field — this is the trace_check --heartbeat
// contract.
TEST(RuntimeCodec, HeartbeatValidationRejectsBadDocuments) {
  const util::Json good = sample_heartbeat().heartbeat_json();
  struct Case {
    const char* field;
    util::Json value;
    const char* expect;  // substring of the error
  };
  auto mutate = [&](const char* field, util::Json value) {
    util::JsonObject o = good.as_object();
    o[field] = std::move(value);
    return util::Json(std::move(o));
  };
  const std::vector<Case> cases = {
      {"schema", util::Json(std::string("wrong")), "schema"},
      {"version", util::Json(99), "version"},
      {"status", util::Json(std::string("jogging")), "status"},
      {"spec_fingerprint", util::Json(std::string("xyz")), "spec_fingerprint"},
      {"plans_done", util::Json(41), "plans_done exceeds plans_total"},
      {"completion", util::Json(1.5), "completion"},
      {"updated_unix_ms", util::Json(10), "earlier than started"},
      {"stages", util::Json(std::string("nope")), "stages"},
  };
  for (const Case& c : cases) {
    auto parsed = RuntimeHeartbeat::heartbeat_from_json(mutate(c.field, c.value));
    ASSERT_FALSE(parsed) << "mutation of " << c.field << " was accepted";
    EXPECT_NE(parsed.error().find(c.expect), std::string::npos)
        << c.field << ": " << parsed.error();
  }
  // Bad shard split: k >= n.
  util::JsonObject o = good.as_object();
  util::JsonObject shard;
  shard["k"] = util::Json(4);
  shard["n"] = util::Json(4);
  o["shard"] = util::Json(std::move(shard));
  auto parsed = RuntimeHeartbeat::heartbeat_from_json(util::Json(std::move(o)));
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error().find("0 <= k < n"), std::string::npos) << parsed.error();
}

TEST(RuntimeCodec, ManifestValidationRejectsBadDocuments) {
  const util::Json good = sample_manifest().manifest_json();
  auto mutate = [&](const char* field, util::Json value) {
    util::JsonObject o = good.as_object();
    o[field] = std::move(value);
    return util::Json(std::move(o));
  };
  struct Case {
    const char* field;
    util::Json value;
    const char* expect;
  };
  const std::vector<Case> cases = {
      {"schema", util::Json(std::string("ednsm-heartbeat")), "schema"},
      {"status", util::Json(std::string("meh")), "status"},
      {"seed", util::Json(12), "seed"},
      {"plans", util::Json(41), "plans exceeds total_shards"},
      {"finished_unix_ms", util::Json(10), "earlier than started"},
      {"wall_ms", util::Json(-1), "wall_ms"},
  };
  for (const Case& c : cases) {
    auto parsed = RunManifest::manifest_from_json(mutate(c.field, c.value));
    ASSERT_FALSE(parsed) << "mutation of " << c.field << " was accepted";
    EXPECT_NE(parsed.error().find(c.expect), std::string::npos)
        << c.field << ": " << parsed.error();
  }
}

TEST(RuntimeTelemetryTest, SnapshotMathUnderFakeClocks) {
  g_fake_ns = 1;  // nonzero so "never written" sentinels don't alias
  g_fake_ms = 50000;
  RuntimeTelemetry t(&fake_ns, &fake_ms);
  t.describe_run(0xabcull, 1, 4, 2);
  t.begin_run(8);

  // 2 wall seconds pass; 4 of 8 plans complete; 3 reach the sink.
  g_fake_ns += 2000000000ull;
  g_fake_ms += 2000;
  for (int i = 0; i < 4; ++i) t.note_plan_done(100000000ull);  // 0.1 s busy each
  t.note_sink_items(3, 50000000ull);
  t.note_collector_idle_spin();
  t.note_records(60);
  t.note_bytes_encoded(2048);

  const RuntimeHeartbeat h = t.snapshot_runtime("running");
  EXPECT_EQ(h.spec_fingerprint, 0xabcull);
  EXPECT_EQ(h.shard_k, 1u);
  EXPECT_EQ(h.shard_n, 4u);
  EXPECT_EQ(h.threads, 2);
  EXPECT_EQ(h.started_unix_ms, 50000u);
  EXPECT_EQ(h.updated_unix_ms, 52000u);
  EXPECT_DOUBLE_EQ(h.elapsed_ms, 2000.0);
  EXPECT_EQ(h.plans_total, 8u);
  EXPECT_EQ(h.plans_done, 4u);
  EXPECT_EQ(h.collector_lag, 1u);  // 4 done - 3 sunk
  EXPECT_EQ(h.records, 60u);
  EXPECT_EQ(h.bytes_encoded, 2048u);
  EXPECT_DOUBLE_EQ(h.completion, 0.5);
  EXPECT_DOUBLE_EQ(h.plans_per_sec, 2.0);  // 4 plans / 2 s
  EXPECT_DOUBLE_EQ(h.eta_ms, 2000.0);      // half done after 2 s -> 2 s left

  ASSERT_EQ(h.stages.size(), 3u);
  EXPECT_EQ(h.stages[0].stage, "expand");
  EXPECT_EQ(h.stages[0].items_in, 8u);
  EXPECT_EQ(h.stages[1].stage, "simulate");
  EXPECT_EQ(h.stages[1].items_out, 4u);
  EXPECT_EQ(h.stages[1].busy_ns, 400000000ull);
  EXPECT_EQ(h.stages[2].stage, "collect");
  EXPECT_EQ(h.stages[2].items_out, 3u);
  EXPECT_EQ(h.stages[2].busy_ns, 50000000ull);
  EXPECT_EQ(h.stages[2].stall_spins, 1u);

  // The snapshot round-trips through its own codec (what --progress-file
  // writes is exactly what ednsm_watch parses).
  auto parsed = RuntimeHeartbeat::heartbeat_from_json(h.heartbeat_json());
  ASSERT_TRUE(parsed) << parsed.error();
  EXPECT_EQ(parsed.value().plans_done, 4u);
}

TEST(RuntimeTelemetryTest, RingSinkAggregation) {
  g_fake_ns = 1;
  g_fake_ms = 1;
  RuntimeTelemetry t(&fake_ns, &fake_ms);
  t.begin_run(10);
  t.configure_workers(2);
  ASSERT_NE(t.task_ring_stats(0), nullptr);
  ASSERT_NE(t.task_ring_stats(1), nullptr);
  ASSERT_NE(t.outcome_ring_stats(1), nullptr);
  EXPECT_EQ(t.task_ring_stats(2), nullptr);  // out of range

  t.task_ring_stats(0)->pushes.store(6);
  t.task_ring_stats(1)->pushes.store(4);
  t.task_ring_stats(0)->pops.store(5);
  t.task_ring_stats(1)->pops.store(4);
  t.task_ring_stats(0)->max_occupancy.store(3);
  t.task_ring_stats(1)->max_occupancy.store(9);
  t.outcome_ring_stats(0)->pops.store(7);
  t.outcome_ring_stats(1)->push_stall_spins.store(11);

  const RuntimeHeartbeat h = t.snapshot_runtime("running");
  EXPECT_EQ(h.stages[0].items_out, 10u);       // task pushes summed
  EXPECT_EQ(h.stages[0].max_queue_depth, 9u);  // max across workers
  EXPECT_EQ(h.stages[1].items_in, 9u);         // task pops summed
  EXPECT_EQ(h.stages[1].stall_spins, 11u);     // outcome push stalls
  EXPECT_EQ(h.stages[2].items_in, 7u);         // outcome pops summed
}

TEST(RuntimeTelemetryTest, ZeroPlansMeansZeroedDerivedRates) {
  g_fake_ns = 1;
  g_fake_ms = 1;
  RuntimeTelemetry t(&fake_ns, &fake_ms);
  t.begin_run(0);
  g_fake_ns += 1000000000ull;
  const RuntimeHeartbeat h = t.snapshot_runtime("running");
  EXPECT_DOUBLE_EQ(h.completion, 0.0);
  EXPECT_DOUBLE_EQ(h.plans_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(h.eta_ms, 0.0);
}

TEST(RuntimeStragglers, DetectsBeyondTwiceMedian) {
  auto with_wall = [](double wall) {
    RunManifest m = sample_manifest();
    m.wall_ms = wall;
    return m;
  };
  // Odd count: median 100; 250 > 200 flags, 150 does not.
  std::vector<RunManifest> odd = {with_wall(100), with_wall(250), with_wall(100)};
  EXPECT_EQ(straggler_shards(odd), (std::vector<std::size_t>{1}));
  std::vector<RunManifest> near = {with_wall(100), with_wall(150), with_wall(100)};
  EXPECT_TRUE(straggler_shards(near).empty());
  // Even count: median is the middle-two average (100); 500 flags.
  std::vector<RunManifest> even = {with_wall(100), with_wall(100), with_wall(100),
                                   with_wall(500)};
  EXPECT_EQ(straggler_shards(even), (std::vector<std::size_t>{3}));
  // Degenerate inputs never flag.
  EXPECT_TRUE(straggler_shards({}).empty());
  EXPECT_TRUE(straggler_shards({with_wall(100)}).empty());
}

TEST(RuntimeStragglers, StatsTableMarksStragglers) {
  auto shard = [](std::size_t k, double wall) {
    RunManifest m = sample_manifest();
    m.shard_k = k;
    m.wall_ms = wall;
    return m;
  };
  // Handed out of order: the table sorts by slice index.
  const std::string table =
      shard_stats_table({shard(2, 900), shard(0, 100), shard(1, 110)});
  EXPECT_NE(table.find("straggler"), std::string::npos) << table;
  const std::size_t row0 = table.find(" 0/4");
  const std::size_t row1 = table.find(" 1/4");
  const std::size_t row2 = table.find(" 2/4");
  ASSERT_NE(row0, std::string::npos) << table;
  ASSERT_NE(row1, std::string::npos) << table;
  ASSERT_NE(row2, std::string::npos) << table;
  EXPECT_LT(row0, row1);
  EXPECT_LT(row1, row2);
  // Only the 900 ms shard carries the marker.
  EXPECT_GT(table.find("straggler"), row2);
}

TEST(RuntimeCampaignFold, TotalsAndSortedShards) {
  auto shard = [](std::size_t k, double wall, std::uint64_t records) {
    RunManifest m = sample_manifest();
    m.shard_k = k;
    m.wall_ms = wall;
    m.records = records;
    return m;
  };
  const util::Json fold =
      campaign_manifest_json({shard(1, 200, 30), shard(0, 100, 20), shard(2, 900, 10)});
  EXPECT_EQ(fold.at("schema").as_string(), "ednsm-campaign-manifest");
  EXPECT_DOUBLE_EQ(fold.at("records").as_number(), 60.0);
  EXPECT_DOUBLE_EQ(fold.at("plans").as_number(), 30.0);
  EXPECT_DOUBLE_EQ(fold.at("wall_ms_max").as_number(), 900.0);
  EXPECT_DOUBLE_EQ(fold.at("wall_ms_sum").as_number(), 1200.0);
  EXPECT_DOUBLE_EQ(fold.at("stragglers").as_number(), 1.0);
  const util::JsonArray& shards = fold.at("shards").as_array();
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_DOUBLE_EQ(shards[0].at("k").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(shards[1].at("k").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(shards[2].at("k").as_number(), 2.0);
  EXPECT_FALSE(shards[0].at("straggler").as_bool());
  EXPECT_TRUE(shards[2].at("straggler").as_bool());
}

TEST(HeartbeatWriterTest, RateLimitAndTerminalWrites) {
  g_fake_ns = 1;
  g_fake_ms = 1000;
  RuntimeTelemetry t(&fake_ns, &fake_ms);
  t.describe_run(0x1ull, 0, 1, 1);
  t.begin_run(4);
  const std::string path = std::string(::testing::TempDir()) + "ednsm_heartbeat_test.json";
  HeartbeatWriter writer(path, t, /*interval_ms=*/500);

  auto read_status = [&path]() {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    auto j = util::Json::parse(buf.str());
    EXPECT_TRUE(j) << (j ? "" : j.error());
    return j ? j.value().at("status").as_string() : std::string();
  };

  writer.write_update();  // first call always writes, as "starting"
  EXPECT_EQ(read_status(), "starting");

  t.note_plan_done(0);
  writer.write_update();  // within the interval: rate-limited, no rewrite
  EXPECT_EQ(read_status(), "starting");

  g_fake_ns += 600ull * 1000000ull;  // past the 500 ms interval
  writer.write_update();
  EXPECT_EQ(read_status(), "running");

  auto final_ok = writer.write_final("done");
  ASSERT_TRUE(final_ok) << final_ok.error();
  EXPECT_EQ(read_status(), "done");

  // The file on disk is always a complete, valid heartbeat document.
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = RuntimeHeartbeat::heartbeat_from_json(util::Json::parse(buf.str()).value());
  ASSERT_TRUE(parsed) << parsed.error();
  EXPECT_EQ(parsed.value().plans_done, 1u);
}

TEST(HeartbeatWriterTest, UpdateSwallowsIoErrors) {
  g_fake_ns = 1;
  g_fake_ms = 1;
  RuntimeTelemetry t(&fake_ns, &fake_ms);
  t.begin_run(1);
  HeartbeatWriter writer("/nonexistent-dir/heartbeat.json", t);
  writer.write_update();  // must not throw or abort
  auto final_result = writer.write_final("done");
  EXPECT_FALSE(final_result);  // terminal write surfaces the error
}

}  // namespace
}  // namespace ednsm::obs
