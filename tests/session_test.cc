// The unified resolver-session layer: SessionFactory dispatch, the per-phase
// timing invariants every protocol must satisfy, ODoH through the standard
// probe path, and the expanded ResultRecord JSON codec.
#include <gtest/gtest.h>

#include "client/session.h"
#include "core/probe.h"
#include "core/world.h"
#include "geo/geodb.h"
#include "resolver/server.h"

namespace ednsm::client {
namespace {

using netsim::AccessLinkModel;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;
using resolver::AnycastSite;
using resolver::ResolverServer;
using resolver::ServerBehavior;

struct SessionWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(23)};
  IpAddr client_ip;
  std::unique_ptr<ResolverServer> server;
  std::unique_ptr<transport::ConnectionPool> pool;

  SessionWorld() {
    ServerBehavior behavior;
    behavior.warm_cache_probability = 1.0;  // deterministic fast answers
    client_ip = net.attach("client", geo::city::kColumbusOhio,
                           AccessLinkModel::datacenter());
    server = std::make_unique<ResolverServer>(
        net, "dns.example", AnycastSite{"Chicago", geo::city::kChicago}, behavior);
    pool = std::make_unique<transport::ConnectionPool>(net, client_ip);
  }

  [[nodiscard]] std::unique_ptr<ResolverSession> make(Protocol protocol,
                                                      QueryOptions options = {}) {
    const SessionFactory factory(net, client_ip, *pool);
    SessionTarget target;
    target.server = server->address();
    target.hostname = "dns.example";
    return factory.create(protocol, std::move(target), options);
  }

  [[nodiscard]] QueryOutcome ask(ResolverSession& session, const std::string& domain) {
    std::optional<QueryOutcome> out;
    session.query(dns::Name::parse(domain).value(), dns::RecordType::A,
                  [&](QueryOutcome o) { out = std::move(o); });
    queue.run_until_idle();
    EXPECT_TRUE(out.has_value());
    return std::move(out).value();
  }
};

TEST(SessionFactory, CreatesEveryProtocol) {
  SessionWorld w;
  for (const Protocol p :
       {Protocol::Do53, Protocol::DoT, Protocol::DoH, Protocol::DoQ, Protocol::ODoH}) {
    const auto session = w.make(p);
    ASSERT_NE(session, nullptr) << to_string(p);
    EXPECT_EQ(session->protocol(), p);
    EXPECT_EQ(session->target().hostname, "dns.example");
  }
}

TEST(SessionFactory, TargetRelayFlagsOdoh) {
  SessionTarget direct;
  direct.hostname = "dns.example";
  EXPECT_FALSE(direct.via_relay());
  SessionTarget relayed = direct;
  relayed.relay_sni = "relay.example";
  EXPECT_TRUE(relayed.via_relay());
}

// Every successful query must satisfy phase_sum() <= total: phases are
// disjoint slices of the same wall-clock interval, never overlapping ones.
TEST(SessionTiming, ColdPhasesDecomposeTotal) {
  for (const Protocol p : {Protocol::Do53, Protocol::DoT, Protocol::DoH, Protocol::DoQ}) {
    SessionWorld w;
    const auto session = w.make(p);
    const QueryOutcome out = w.ask(*session, "example.com");
    ASSERT_TRUE(out.ok) << to_string(p);
    EXPECT_LE(out.timing.phase_sum(), out.timing.total) << to_string(p);
    EXPECT_GT(out.timing.exchange, netsim::kZeroDuration) << to_string(p);
    EXPECT_FALSE(out.timing.connection_reused) << to_string(p);
  }
}

TEST(SessionTiming, DotColdQueryStampsTcpAndTls) {
  SessionWorld w;
  const auto session = w.make(Protocol::DoT);
  const QueryOutcome out = w.ask(*session, "example.com");
  ASSERT_TRUE(out.ok);
  EXPECT_GT(out.timing.tcp_handshake, netsim::kZeroDuration);
  EXPECT_GT(out.timing.tls_handshake, netsim::kZeroDuration);
  EXPECT_EQ(out.timing.quic_handshake, netsim::kZeroDuration);
  // The lease phases partition connect: setup not spent in handshakes is
  // pool wait, so the three together never exceed the connect time.
  EXPECT_LE(out.timing.tcp_handshake + out.timing.tls_handshake + out.timing.wait_in_pool,
            out.timing.connect);
}

TEST(SessionTiming, WarmQueryHasNoHandshakePhases) {
  SessionWorld w;
  QueryOptions options;
  options.reuse = transport::ReusePolicy::Keepalive;
  const auto session = w.make(Protocol::DoH, options);
  ASSERT_TRUE(w.ask(*session, "a.com").ok);
  const QueryOutcome warm = w.ask(*session, "b.com");
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.timing.connection_reused);
  EXPECT_EQ(warm.timing.connect, netsim::kZeroDuration);
  EXPECT_EQ(warm.timing.tcp_handshake, netsim::kZeroDuration);
  EXPECT_EQ(warm.timing.tls_handshake, netsim::kZeroDuration);
  EXPECT_EQ(warm.timing.quic_handshake, netsim::kZeroDuration);
  EXPECT_EQ(warm.timing.wait_in_pool, netsim::kZeroDuration);
  EXPECT_GT(warm.timing.exchange, netsim::kZeroDuration);
  // Warm, the whole response IS the exchange.
  EXPECT_EQ(warm.timing.exchange, warm.timing.total);
}

TEST(SessionTiming, DoqReportsQuicHandshakeNotTcpTls) {
  SessionWorld w;
  const auto session = w.make(Protocol::DoQ);
  const QueryOutcome out = w.ask(*session, "example.com");
  ASSERT_TRUE(out.ok);
  EXPECT_GT(out.timing.quic_handshake, netsim::kZeroDuration);
  EXPECT_EQ(out.timing.tcp_handshake, netsim::kZeroDuration);
  EXPECT_EQ(out.timing.tls_handshake, netsim::kZeroDuration);
  EXPECT_LE(out.timing.quic_handshake, out.timing.total);
}

TEST(SessionTiming, Do53IsPureExchange) {
  SessionWorld w;
  const auto session = w.make(Protocol::Do53);
  const QueryOutcome out = w.ask(*session, "example.com");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.timing.tcp_handshake, netsim::kZeroDuration);
  EXPECT_EQ(out.timing.tls_handshake, netsim::kZeroDuration);
  EXPECT_EQ(out.timing.quic_handshake, netsim::kZeroDuration);
  EXPECT_EQ(out.timing.exchange, out.timing.total);
}

TEST(ProtocolNames, RoundTripAllFive) {
  for (const Protocol p :
       {Protocol::Do53, Protocol::DoT, Protocol::DoH, Protocol::DoQ, Protocol::ODoH}) {
    const auto parsed = protocol_from_string(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(to_string(Protocol::ODoH), "ODoH");
  EXPECT_FALSE(protocol_from_string("DoX").has_value());
}

}  // namespace
}  // namespace ednsm::client

namespace ednsm::core {
namespace {

// ODoH rides the standard probe path: the probe wires the world's shared
// relay into the session target and records come back tagged ODoH.
TEST(SessionProbe, OdohThroughStandardProbePath) {
  SimWorld world(7);
  std::vector<ResultRecord> records;
  client::QueryOptions options;
  DnsProbe::run(world, "ec2-ohio", "odoh-target.alekberg.net", {"example.com", "test.org"},
                client::Protocol::ODoH, options, 0,
                [&](std::vector<ResultRecord> r) { records = std::move(r); });
  world.run();
  ASSERT_EQ(records.size(), 2u);
  for (const ResultRecord& r : records) {
    EXPECT_TRUE(r.ok) << r.error_class << ": " << r.error_detail;
    EXPECT_EQ(r.protocol, client::Protocol::ODoH);
    EXPECT_GT(r.response_ms, 0.0);
    EXPECT_GT(r.exchange_ms, 0.0);
    EXPECT_LE(r.tcp_handshake_ms + r.tls_handshake_ms + r.quic_handshake_ms +
                  r.pool_wait_ms + r.exchange_ms,
              r.response_ms + 1e-9);
  }
}

TEST(ResultRecordJson, PhaseFieldsRoundTripLosslessly) {
  ResultRecord r;
  r.vantage = "ec2-ohio";
  r.resolver = "dns.example";
  r.domain = "example.com";
  r.protocol = client::Protocol::ODoH;
  r.round = 3;
  r.issued_at_ms = 1200.5;
  r.ok = true;
  r.response_ms = 84.25;
  r.connect_ms = 41.5;
  r.tcp_handshake_ms = 20.25;
  r.tls_handshake_ms = 19.75;
  r.quic_handshake_ms = 0.5;
  r.pool_wait_ms = 1.0;
  r.exchange_ms = 42.75;
  r.connection_reused = true;
  r.rcode = "NOERROR";
  r.http_status = 200;
  r.answer_count = 2;

  const auto parsed = ResultRecord::from_json(r.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  const ResultRecord& p = parsed.value();
  EXPECT_EQ(p.protocol, client::Protocol::ODoH);
  EXPECT_DOUBLE_EQ(p.response_ms, r.response_ms);
  EXPECT_DOUBLE_EQ(p.connect_ms, r.connect_ms);
  EXPECT_DOUBLE_EQ(p.tcp_handshake_ms, r.tcp_handshake_ms);
  EXPECT_DOUBLE_EQ(p.tls_handshake_ms, r.tls_handshake_ms);
  EXPECT_DOUBLE_EQ(p.quic_handshake_ms, r.quic_handshake_ms);
  EXPECT_DOUBLE_EQ(p.pool_wait_ms, r.pool_wait_ms);
  EXPECT_DOUBLE_EQ(p.exchange_ms, r.exchange_ms);
  EXPECT_TRUE(p.connection_reused);
  // A second round trip is byte-identical: the codec is a fixed point.
  EXPECT_EQ(p.to_json().dump(), r.to_json().dump());
}

TEST(ResultRecordJson, AbsentPhaseFieldsParseAsZero) {
  // Records written by earlier releases (or warm queries, which emit no
  // phase keys) must parse with every phase at zero.
  ResultRecord r;
  r.vantage = "v";
  r.resolver = "r";
  r.domain = "d";
  r.ok = true;
  r.rcode = "NOERROR";
  const auto parsed = ResultRecord::from_json(r.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_DOUBLE_EQ(parsed.value().tcp_handshake_ms, 0.0);
  EXPECT_DOUBLE_EQ(parsed.value().tls_handshake_ms, 0.0);
  EXPECT_DOUBLE_EQ(parsed.value().quic_handshake_ms, 0.0);
  EXPECT_DOUBLE_EQ(parsed.value().pool_wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(parsed.value().exchange_ms, 0.0);
}

}  // namespace
}  // namespace ednsm::core
