// SpscRing: the stage connector of the campaign pipeline. FIFO order,
// capacity rounding, full/empty edges, close()/drain semantics, move-only
// payloads, and a real producer/consumer thread pair (the case the TSan CI
// job replays).
#include "util/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace ednsm::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) ring.push(i);
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TryPushFullLeavesValueIntact) {
  SpscRing<int> ring(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  EXPECT_FALSE(ring.try_push(c));
  EXPECT_EQ(c, 3);  // untouched on failure
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRing, WrapAroundKeepsOrder) {
  SpscRing<int> ring(4);
  int out = -1;
  // Push/pop more items than the capacity so the cursors wrap the mask.
  for (int i = 0; i < 100; ++i) {
    ring.push(i);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, PopDrainsItemsPushedBeforeClose) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ring.push(i);
  ring.close();
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));  // closed and drained: end of stream
  EXPECT_TRUE(ring.closed());
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  auto p = std::make_unique<int>(42);
  ASSERT_TRUE(ring.try_push(p));
  EXPECT_EQ(p, nullptr);  // moved out
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The contract the pipeline stages rely on: one producer thread, one consumer
// thread, every item delivered exactly once in order, end-of-stream after
// close(). Run under TSan in CI (the SpscRing test filter).
TEST(SpscRing, ThreadedProducerConsumer) {
  constexpr std::uint64_t kItems = 100000;
  SpscRing<std::uint64_t> ring(64);
  std::vector<std::uint64_t> received;
  received.reserve(kItems);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.push(i);
    ring.close();
  });
  std::uint64_t v = 0;
  while (ring.pop(v)) received.push_back(v);
  producer.join();

  ASSERT_EQ(received.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
}

// --- Stat-hook tests (util/ring_stats.h) -----------------------------------

// Deterministic fake clock for stall-duration accounting: each read advances
// by a fixed step, so durations are exact and test-reproducible.
std::uint64_t fake_now_ns() {
  static std::atomic<std::uint64_t> ticks{0};
  return ticks.fetch_add(1, std::memory_order_relaxed) * 100;
}

TEST(SpscRingStats, SingleThreadExactCounters) {
  SpscRing<int> ring(4);
  RingStatSink sink;
  ring.attach_stats(&sink);

  // 4 pushes fill the ring; try_push on full fails and must not count.
  for (int i = 0; i < 4; ++i) ring.push(i);
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(sink.pushes.load(), 4u);
  EXPECT_EQ(sink.max_occupancy.load(), 4u);

  // 2 pops, then a failed try_pop after draining 2 more.
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(sink.pops.load(), 2u);
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(sink.pops.load(), 4u);

  // No blocking happened: stall counters stay zero.
  EXPECT_EQ(sink.push_stall_spins.load(), 0u);
  EXPECT_EQ(sink.pop_stall_spins.load(), 0u);
  EXPECT_EQ(sink.push_stall_ns.load(), 0u);
  EXPECT_EQ(sink.pop_stall_ns.load(), 0u);

  // Refill to 2: the high-water mark from the first fill stays at 4.
  ring.push(5);
  ring.push(6);
  EXPECT_EQ(sink.pushes.load(), 6u);
  EXPECT_EQ(sink.max_occupancy.load(), 4u);
}

TEST(SpscRingStats, NoSinkMeansNoCrashAndNoCounting) {
  SpscRing<int> ring(2);  // never attached
  ring.push(1);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
}

// A guaranteed push stall: fill the ring, block the producer in push(), then
// drain from the main thread. Spin counts are timing-dependent, so assert
// monotone (> 0), not exact; durations use the fake clock so they are > 0
// whenever spins are.
TEST(SpscRingStats, BlockedPushRecordsStall) {
  SpscRing<int> ring(2);
  RingStatSink sink;
  sink.now_ns = &fake_now_ns;
  ring.attach_stats(&sink);

  ring.push(0);
  ring.push(1);
  // Stall spins are published only after the blocking push returns, so the
  // main thread can't gate on them; a started-flag handshake plus a generous
  // sleep makes "producer reached push() before the pop" all but certain.
  std::atomic<bool> producer_started{false};
  std::thread producer([&] {
    producer_started.store(true);
    ring.push(2);  // must stall: ring full
  });
  while (!producer_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  producer.join();

  EXPECT_GT(sink.push_stall_spins.load(), 0u);
  EXPECT_GT(sink.push_stall_ns.load(), 0u);
  EXPECT_EQ(sink.pushes.load(), 3u);
}

// A pop stall: the consumer blocks on an empty-but-open ring until the
// producer pushes. Stall spins are recorded only after the blocking pop
// returns, so the producer can't gate on them; a started-flag handshake plus
// a generous sleep makes "consumer reached pop() before the push" all but
// certain without busy-waiting on anything the consumer publishes.
TEST(SpscRingStats, BlockedPopRecordsStall) {
  SpscRing<int> ring(2);
  RingStatSink sink;
  sink.now_ns = &fake_now_ns;
  ring.attach_stats(&sink);

  std::atomic<bool> consumer_started{false};
  int out = -1;
  bool got = false;
  std::thread consumer([&] {
    consumer_started.store(true);
    got = ring.pop(out);
  });
  while (!consumer_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.push(7);
  ring.close();
  consumer.join();

  ASSERT_TRUE(got);
  EXPECT_EQ(out, 7);
  EXPECT_GT(sink.pop_stall_spins.load(), 0u);
  EXPECT_GT(sink.pop_stall_ns.load(), 0u);
  EXPECT_EQ(sink.pops.load(), 1u);
}

// The TSan CI job replays this: full producer/consumer pair with stats
// attached and the fake clock injected. Counters must balance exactly.
TEST(SpscRingStats, ThreadedCountersBalance) {
  constexpr std::uint64_t kItems = 50000;
  SpscRing<std::uint64_t> ring(8);  // small ring: force real contention
  RingStatSink sink;
  sink.now_ns = &fake_now_ns;
  ring.attach_stats(&sink);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.push(i);
    ring.close();
  });
  std::uint64_t v = 0;
  std::uint64_t received = 0;
  while (ring.pop(v)) ++received;
  producer.join();

  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sink.pushes.load(), kItems);
  EXPECT_EQ(sink.pops.load(), kItems);
  EXPECT_GE(sink.max_occupancy.load(), 1u);
  EXPECT_LE(sink.max_occupancy.load(), ring.capacity());
}

}  // namespace
}  // namespace ednsm::util
