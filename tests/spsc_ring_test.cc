// SpscRing: the stage connector of the campaign pipeline. FIFO order,
// capacity rounding, full/empty edges, close()/drain semantics, move-only
// payloads, and a real producer/consumer thread pair (the case the TSan CI
// job replays).
#include "util/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace ednsm::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) ring.push(i);
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TryPushFullLeavesValueIntact) {
  SpscRing<int> ring(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  EXPECT_FALSE(ring.try_push(c));
  EXPECT_EQ(c, 3);  // untouched on failure
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRing, WrapAroundKeepsOrder) {
  SpscRing<int> ring(4);
  int out = -1;
  // Push/pop more items than the capacity so the cursors wrap the mask.
  for (int i = 0; i < 100; ++i) {
    ring.push(i);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, PopDrainsItemsPushedBeforeClose) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ring.push(i);
  ring.close();
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));  // closed and drained: end of stream
  EXPECT_TRUE(ring.closed());
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  auto p = std::make_unique<int>(42);
  ASSERT_TRUE(ring.try_push(p));
  EXPECT_EQ(p, nullptr);  // moved out
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The contract the pipeline stages rely on: one producer thread, one consumer
// thread, every item delivered exactly once in order, end-of-stream after
// close(). Run under TSan in CI (the SpscRing test filter).
TEST(SpscRing, ThreadedProducerConsumer) {
  constexpr std::uint64_t kItems = 100000;
  SpscRing<std::uint64_t> ring(64);
  std::vector<std::uint64_t> received;
  received.reserve(kItems);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.push(i);
    ring.close();
  });
  std::uint64_t v = 0;
  while (ring.pop(v)) received.push_back(v);
  producer.join();

  ASSERT_EQ(received.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
}

}  // namespace
}  // namespace ednsm::util
