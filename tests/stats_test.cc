#include <gtest/gtest.h>

#include <cmath>

#include "netsim/rng.h"
#include "stats/correlation.h"
#include "stats/group.h"
#include "stats/histogram.h"
#include "stats/quantile.h"
#include "stats/welford.h"

namespace ednsm::stats {
namespace {

// ---- quantiles -----------------------------------------------------------------

TEST(Quantile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(median({})));
}

TEST(Quantile, SingleValue) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(Quantile, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Quantile, Type7Interpolation) {
  // NumPy: np.quantile([1,2,3,4], 0.25) == 1.75
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.75), 3.25);
}

TEST(Quantile, ExtremesAreMinMax) {
  EXPECT_DOUBLE_EQ(quantile({5, 9, 1, 7}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({5, 9, 1, 7}, 1.0), 9.0);
}

TEST(Quantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(median({9, 1, 5}), 5.0);
}

class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, NonDecreasingInQ) {
  netsim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs(101);
  for (auto& x : xs) x = rng.lognormal(2.0, 1.0);
  double prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = quantile(xs, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone, ::testing::Range(1, 8));

// ---- box summary ---------------------------------------------------------------

TEST(BoxSummary, EmptyIsZeroCount) {
  const BoxSummary s = box_summary({});
  EXPECT_EQ(s.count, 0u);
}

TEST(BoxSummary, FiveNumbers) {
  const BoxSummary s = box_summary({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(s.count, 9u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 9);
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_DOUBLE_EQ(s.q1, 3);
  EXPECT_DOUBLE_EQ(s.q3, 7);
  EXPECT_TRUE(s.outliers.empty());
  EXPECT_DOUBLE_EQ(s.whisker_low, 1);
  EXPECT_DOUBLE_EQ(s.whisker_high, 9);
}

TEST(BoxSummary, OutliersBeyondTukeyFences) {
  std::vector<double> xs = {10, 11, 12, 13, 14, 15, 16, 100};
  const BoxSummary s = box_summary(xs);
  ASSERT_EQ(s.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.outliers[0], 100);
  EXPECT_LT(s.whisker_high, 100);
}

TEST(BoxSummary, WhiskersClampToData) {
  const BoxSummary s = box_summary({1, 2, 3});
  EXPECT_GE(s.whisker_low, 1);
  EXPECT_LE(s.whisker_high, 3);
}

// ---- Welford -------------------------------------------------------------------

TEST(Welford, MeanVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleValueVarianceZero) {
  Welford w;
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(Welford, MergeEqualsSequential) {
  Welford all, a, b;
  netsim::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5, 2);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a, empty;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Welford, FromMomentsRoundTripsAccumulators) {
  Welford w;
  netsim::Rng rng(11);
  for (int i = 0; i < 257; ++i) w.add(rng.normal(40, 12));
  const Welford back = Welford::from_moments(w.count(), w.mean(), w.m2(), w.min(), w.max());
  EXPECT_EQ(back.count(), w.count());
  EXPECT_DOUBLE_EQ(back.mean(), w.mean());
  EXPECT_DOUBLE_EQ(back.m2(), w.m2());
  EXPECT_DOUBLE_EQ(back.variance(), w.variance());
  EXPECT_DOUBLE_EQ(back.min(), w.min());
  EXPECT_DOUBLE_EQ(back.max(), w.max());
  // A reconstructed accumulator keeps accepting samples.
  Welford grown = back;
  grown.add(w.mean());
  EXPECT_EQ(grown.count(), w.count() + 1);
}

// ---- histogram ------------------------------------------------------------------

TEST(Histogram, BinPlacement) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(49.9);
  h.add(1000.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.bins()[4], 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NegativeClampsToZeroBin) {
  Histogram h(1.0, 4);
  h.add(-5.0);
  EXPECT_EQ(h.bins()[0], 1u);
}

TEST(Histogram, ApproxQuantileReasonable) {
  Histogram h(1.0, 200);
  netsim::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0, 100);
    xs.push_back(x);
    h.add(x);
  }
  EXPECT_NEAR(h.approx_quantile(0.5), median(xs), 1.5);
  EXPECT_NEAR(h.approx_quantile(0.9), quantile(xs, 0.9), 1.5);
}

TEST(Histogram, EmptyQuantileIsNaN) {
  Histogram h(1.0, 10);
  EXPECT_TRUE(std::isnan(h.approx_quantile(0.5)));
}

TEST(Histogram, MergeWithZeroSampleSide) {
  // Merging an empty histogram must be an identity on both sides: shard
  // merges routinely combine a populated histogram with one whose vantage
  // recorded no samples.
  Histogram populated(10.0, 5);
  populated.add(5.0);
  populated.add(25.0);
  Histogram empty(10.0, 5);

  ASSERT_TRUE(populated.merge(empty));
  EXPECT_EQ(populated.count(), 2u);
  EXPECT_EQ(populated.bins()[0], 1u);
  EXPECT_EQ(populated.bins()[2], 1u);

  Histogram target(10.0, 5);
  ASSERT_TRUE(target.merge(populated));
  EXPECT_EQ(target.count(), 2u);
  EXPECT_NEAR(target.approx_quantile(0.5), populated.approx_quantile(0.5), 1e-9);

  Histogram a(10.0, 5), b(10.0, 5);
  ASSERT_TRUE(a.merge(b));  // both empty stays empty
  EXPECT_EQ(a.count(), 0u);
  EXPECT_TRUE(std::isnan(a.approx_quantile(0.5)));

  // Shape mismatches are still rejected, empty or not.
  Histogram narrow(10.0, 3);
  EXPECT_FALSE(populated.merge(narrow));
}

TEST(Histogram, AddCountBulkLoadsBins) {
  Histogram h(10.0, 5);
  ASSERT_TRUE(h.add_count(0, 3));
  ASSERT_TRUE(h.add_count(5, 2));  // overflow bin index == bins count
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bins()[0], 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_FALSE(h.add_count(6, 1));  // out of range: no-op
  EXPECT_EQ(h.count(), 5u);

  // Bulk-load round-trips the sample-by-sample path.
  Histogram direct(10.0, 5);
  direct.add(5.0);
  direct.add(5.0);
  direct.add(1000.0);
  Histogram loaded(10.0, 5);
  for (std::size_t i = 0; i < direct.bins().size(); ++i) {
    ASSERT_TRUE(loaded.add_count(i, direct.bins()[i]));
  }
  EXPECT_EQ(loaded.bins(), direct.bins());
  EXPECT_EQ(loaded.count(), direct.count());
}

// ---- grouped samples -------------------------------------------------------------

TEST(Group, AddAndSummarize) {
  GroupedSamples g;
  g.add("a", 1);
  g.add("a", 3);
  g.add("b", 10);
  EXPECT_EQ(g.group_count(), 2u);
  EXPECT_EQ(g.total_samples(), 3u);
  EXPECT_DOUBLE_EQ(g.median_of("a"), 2.0);
  EXPECT_DOUBLE_EQ(g.median_of("b"), 10.0);
  EXPECT_TRUE(std::isnan(g.median_of("missing")));
  EXPECT_EQ(g.summary_of("a").count, 2u);
  EXPECT_EQ(g.summary_of("missing").count, 0u);
}

TEST(Group, KeysSorted) {
  GroupedSamples g;
  g.add("z", 1);
  g.add("a", 1);
  g.add("m", 1);
  EXPECT_EQ(g.keys(), (std::vector<std::string>{"a", "m", "z"}));
}

TEST(Group, KeysByMedianAscending) {
  GroupedSamples g;
  g.add("slow", 100);
  g.add("fast", 1);
  g.add("mid", 50);
  EXPECT_EQ(g.keys_by_median(), (std::vector<std::string>{"fast", "mid", "slow"}));
}

TEST(Group, SamplesPointerStable) {
  GroupedSamples g;
  g.add("x", 5);
  const auto* s = g.samples("x");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->size(), 1u);
  EXPECT_EQ(g.samples("y"), nullptr);
}


// ---- correlation ----------------------------------------------------------------

TEST(Correlation, PearsonPerfectLinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {3, 6, 9, 12, 15};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {15, 12, 9, 6, 3};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Correlation, PearsonDegenerateCases) {
  EXPECT_TRUE(std::isnan(pearson({}, {})));
  EXPECT_TRUE(std::isnan(pearson({1}, {2})));
  EXPECT_TRUE(std::isnan(pearson({1, 1, 1}, {1, 2, 3})));  // constant series
}

TEST(Correlation, PearsonUncorrelatedNearZero) {
  netsim::Rng rng(3);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.next_double();
    y[i] = rng.next_double();
  }
  EXPECT_LT(std::abs(pearson(x, y)), 0.05);
}

TEST(Correlation, RanksHandleTies) {
  const auto r = ranks({10, 20, 20, 30});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  // y = x^3 is monotone but nonlinear: Spearman 1.0, Pearson < 1.
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(static_cast<double>(i) * i * i);
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 0.999);
}

TEST(Correlation, LinearFitRecoversModel) {
  netsim::Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = rng.uniform(0, 100);
    x.push_back(xi);
    y.push_back(3.0 * xi + 7.0 + rng.normal(0, 0.5));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_NEAR(fit.intercept, 7.0, 0.5);
  EXPECT_GT(fit.r_squared, 0.999);
  EXPECT_EQ(fit.n, 2000u);
}

TEST(Correlation, LinearFitDegenerate) {
  const LinearFit empty = linear_fit({}, {});
  EXPECT_EQ(empty.n, 0u);
  const LinearFit vertical = linear_fit({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(vertical.slope, 0.0);  // refuses to divide by zero
}

}  // namespace
}  // namespace ednsm::stats
