#include <gtest/gtest.h>

#include "geo/geodb.h"
#include "transport/pool.h"

namespace ednsm::transport {
namespace {

using netsim::AccessLinkModel;
using netsim::Endpoint;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;

struct PoolWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(10)};
  IpAddr client_ip, server_ip;
  Endpoint server_ep;
  std::unique_ptr<TcpListener> listener;
  std::vector<std::unique_ptr<TlsServerSession>> sessions;
  std::unique_ptr<ConnectionPool> pool;

  PoolWorld() {
    client_ip = net.attach("client", geo::city::kChicago, AccessLinkModel::datacenter());
    server_ip = net.attach("server", geo::city::kChicago, AccessLinkModel::datacenter());
    server_ep = Endpoint{server_ip, 443};
    listener = std::make_unique<TcpListener>(net, server_ep);
    TlsServerConfig cfg;
    cfg.certificate_names = {"dns.example"};
    listener->on_accept([this, cfg](TcpServerConn& conn) {
      sessions.push_back(std::make_unique<TlsServerSession>(queue, net.rng(), conn, cfg));
      auto& s = *sessions.back();
      s.on_data([&s](util::Bytes data) { s.send(data); });
    });
    pool = std::make_unique<ConnectionPool>(net, client_ip);
  }

  ConnectionPool::Lease acquire(ReusePolicy policy, util::Bytes early = {}) {
    std::optional<ConnectionPool::Lease> lease;
    pool->acquire(server_ep, "dns.example", policy, std::move(early),
                  [&](Result<ConnectionPool::Lease> r) {
                    ASSERT_TRUE(r.has_value()) << r.error();
                    lease = r.value();
                  });
    queue.run_until_idle();
    EXPECT_TRUE(lease.has_value());
    return *lease;
  }
};

TEST(Pool, FreshLeaseOnFirstAcquire) {
  PoolWorld w;
  const auto lease = w.acquire(ReusePolicy::Keepalive);
  EXPECT_TRUE(lease.fresh);
  EXPECT_EQ(lease.mode, TlsMode::Full);
  EXPECT_EQ(w.pool->live_sessions(), 1u);
}

TEST(Pool, KeepaliveReusesLiveSession) {
  PoolWorld w;
  const auto first = w.acquire(ReusePolicy::Keepalive);
  const auto second = w.acquire(ReusePolicy::Keepalive);
  EXPECT_TRUE(first.fresh);
  EXPECT_FALSE(second.fresh);
  EXPECT_EQ(first.tls, second.tls);
  EXPECT_EQ(w.pool->live_sessions(), 1u);
}

TEST(Pool, PolicyNoneNeverReuses) {
  PoolWorld w;
  const auto first = w.acquire(ReusePolicy::None);
  EXPECT_TRUE(first.fresh);
  const auto second = w.acquire(ReusePolicy::None);
  EXPECT_TRUE(second.fresh);
}

TEST(Pool, TicketStoredAfterFullHandshake) {
  PoolWorld w;
  EXPECT_FALSE(w.pool->has_ticket(w.server_ep, "dns.example"));
  (void)w.acquire(ReusePolicy::TicketResumption);
  EXPECT_TRUE(w.pool->has_ticket(w.server_ep, "dns.example"));
}

TEST(Pool, ResumptionAfterInvalidate) {
  PoolWorld w;
  (void)w.acquire(ReusePolicy::TicketResumption);
  w.pool->invalidate(w.server_ep, "dns.example");
  EXPECT_EQ(w.pool->live_sessions(), 0u);
  EXPECT_TRUE(w.pool->has_ticket(w.server_ep, "dns.example"));  // ticket survives
  const auto lease = w.acquire(ReusePolicy::TicketResumption);
  EXPECT_TRUE(lease.fresh);
  EXPECT_EQ(lease.mode, TlsMode::Resume);
}

TEST(Pool, ForgetTicketFallsBackToFull) {
  PoolWorld w;
  (void)w.acquire(ReusePolicy::TicketResumption);
  w.pool->invalidate(w.server_ep, "dns.example");
  w.pool->forget_ticket(w.server_ep, "dns.example");
  const auto lease = w.acquire(ReusePolicy::TicketResumption);
  EXPECT_EQ(lease.mode, TlsMode::Full);
}

TEST(Pool, EarlyDataDeliveredWithResumption) {
  PoolWorld w;
  (void)w.acquire(ReusePolicy::TicketResumption);
  w.pool->invalidate(w.server_ep, "dns.example");
  const auto lease = w.acquire(ReusePolicy::TicketResumption, util::to_bytes("early"));
  EXPECT_EQ(lease.mode, TlsMode::EarlyData);
  EXPECT_TRUE(lease.early_data_accepted);
}

TEST(Pool, ConnectFailureSurfacesError) {
  PoolWorld w;
  w.listener->set_refuse(true);
  w.pool->invalidate(w.server_ep, "dns.example");
  std::string error;
  w.pool->acquire(w.server_ep, "dns.example", ReusePolicy::None, {},
                  [&](Result<ConnectionPool::Lease> r) {
                    ASSERT_FALSE(r.has_value());
                    error = r.error();
                  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("refused"), std::string::npos);
  EXPECT_EQ(w.pool->live_sessions(), 0u);  // failed session not pooled
}

TEST(Pool, SniMismatchSurfacesTlsError) {
  PoolWorld w;
  std::string error;
  w.pool->acquire(w.server_ep, "other.example", ReusePolicy::None, {},
                  [&](Result<ConnectionPool::Lease> r) {
                    ASSERT_FALSE(r.has_value());
                    error = r.error();
                  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(Pool, DistinctSniDistinctSessions) {
  PoolWorld w;
  // Server only holds dns.example's cert, so use one name but check keying by
  // acquiring a second endpoint on the same server.
  (void)w.acquire(ReusePolicy::Keepalive);
  EXPECT_EQ(w.pool->live_sessions(), 1u);
  EXPECT_FALSE(w.pool->has_ticket({w.server_ip, 853}, "dns.example"));
}

TEST(Pool, ReusePolicyNames) {
  EXPECT_EQ(to_string(ReusePolicy::None), "none");
  EXPECT_EQ(to_string(ReusePolicy::Keepalive), "keepalive");
  EXPECT_EQ(to_string(ReusePolicy::TicketResumption), "ticket-resumption");
}

}  // namespace
}  // namespace ednsm::transport
