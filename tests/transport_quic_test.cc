#include <gtest/gtest.h>

#include "client/doh.h"
#include "client/doq.h"
#include "geo/geodb.h"
#include "resolver/server.h"
#include "transport/quic.h"

namespace ednsm::transport {
namespace {

using netsim::AccessLinkModel;
using netsim::Endpoint;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;
using netsim::to_ms;

struct QuicWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(41)};
  IpAddr client_ip, server_ip;
  Endpoint server_ep;
  std::unique_ptr<QuicListener> listener;

  explicit QuicWorld(geo::GeoPoint server_loc = geo::city::kAshburn) {
    client_ip = net.attach("client", geo::city::kChicago, AccessLinkModel::datacenter());
    server_ip = net.attach("server", server_loc, AccessLinkModel::datacenter());
    server_ep = Endpoint{server_ip, netsim::kPortDoq};
    QuicServerConfig cfg;
    cfg.certificate_names = {"dns.example"};
    listener = std::make_unique<QuicListener>(net, server_ep, cfg);
    // Echo every stream back.
    listener->on_accept([](const std::shared_ptr<QuicServerConn>& conn) {
      std::weak_ptr<QuicServerConn> weak = conn;
      conn->on_stream([weak](std::uint64_t sid, util::Bytes data) {
        if (auto c = weak.lock()) c->send_stream(sid, std::move(data));
      });
    });
  }
};

TEST(QuicPacket, CodecRoundTrip) {
  QuicPacket p;
  p.type = QuicPacketType::Stream;
  p.conn_id = 0x0123456789abcdefULL;
  p.stream_id = 4;
  p.seq = 2;
  p.total = 7;
  p.data = util::to_bytes("chunk");
  auto decoded = QuicPacket::decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().conn_id, p.conn_id);
  EXPECT_EQ(decoded.value().stream_id, 4u);
  EXPECT_EQ(decoded.value().seq, 2);
  EXPECT_EQ(decoded.value().total, 7);
  EXPECT_EQ(decoded.value().data, p.data);
}

TEST(QuicPacket, DecodeRejectsGarbage) {
  EXPECT_FALSE(QuicPacket::decode(util::to_bytes("zz")).has_value());
  EXPECT_FALSE(QuicPacket::decode(util::Bytes{0}).has_value());
}

TEST(Quic, HandshakeCostsOneRtt) {
  QuicWorld w;
  QuicConnection conn(w.net, {w.client_ip, 53000}, w.server_ep, "dns.example", 1);
  bool connected = false;
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_TRUE(r.has_value()) << r.error();
    connected = true;
  });
  w.queue.run_until_idle();
  EXPECT_TRUE(connected);
  // Chicago-Ashburn RTT ~ 20-30 ms; QUIC handshake is ONE round trip
  // (TCP+TLS over the same path costs two — see Tls.HandshakeCostsOneExtraRtt).
  EXPECT_GT(to_ms(w.queue.now()), 15.0);
  EXPECT_LT(to_ms(w.queue.now()), 45.0);
}

TEST(Quic, StreamEchoRoundTrip) {
  QuicWorld w;
  QuicConnection conn(w.net, {w.client_ip, 53001}, w.server_ep, "dns.example", 2);
  util::Bytes echoed;
  std::uint64_t echoed_sid = 99;
  conn.on_stream([&](std::uint64_t sid, util::Bytes data) {
    echoed_sid = sid;
    echoed = std::move(data);
  });
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(conn.send_stream(util::to_bytes("hello-quic")), 0u);
  });
  w.queue.run_until_idle();
  EXPECT_EQ(echoed, util::to_bytes("hello-quic"));
  EXPECT_EQ(echoed_sid, 0u);
}

TEST(Quic, StreamIdsAdvanceByFour) {
  QuicWorld w;
  QuicConnection conn(w.net, {w.client_ip, 53002}, w.server_ep, "dns.example", 3);
  std::vector<std::uint64_t> sids;
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_TRUE(r.has_value());
    sids.push_back(conn.send_stream(util::to_bytes("a")));
    sids.push_back(conn.send_stream(util::to_bytes("b")));
    sids.push_back(conn.send_stream(util::to_bytes("c")));
  });
  w.queue.run_until_idle();
  EXPECT_EQ(sids, (std::vector<std::uint64_t>{0, 4, 8}));
}

TEST(Quic, LargeStreamChunksAndReassembles) {
  QuicWorld w;
  util::Bytes big(5 * kQuicMaxPayload + 17);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i % 253);
  QuicConnection conn(w.net, {w.client_ip, 53003}, w.server_ep, "dns.example", 4);
  util::Bytes echoed;
  conn.on_stream([&](std::uint64_t, util::Bytes data) { echoed = std::move(data); });
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_TRUE(r.has_value());
    (void)conn.send_stream(big);
  });
  w.queue.run_until_idle();
  EXPECT_EQ(echoed, big);
  EXPECT_GE(conn.stats().stream_packets_sent, 6u);
}

TEST(Quic, LossRecoveredByPto) {
  QuicWorld w;
  QuicConnection conn(w.net, {w.client_ip, 53004}, w.server_ep, "dns.example", 5);
  util::Bytes big(8 * kQuicMaxPayload);
  util::Bytes echoed;
  conn.on_stream([&](std::uint64_t, util::Bytes data) { echoed = std::move(data); });
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_TRUE(r.has_value());
    netsim::PathQuirk lossy;
    lossy.extra_loss = 0.3;
    w.net.set_quirk(w.client_ip, w.server_ip, lossy);
    (void)conn.send_stream(big);
  });
  w.queue.run_until_idle();
  EXPECT_EQ(echoed.size(), big.size());
  EXPECT_GT(conn.stats().stream_retransmissions, 0u);
}

TEST(Quic, TicketEnablesResumption) {
  QuicWorld w;
  std::optional<SessionTicket> ticket;
  {
    QuicConnection conn(w.net, {w.client_ip, 53005}, w.server_ep, "dns.example", 6);
    conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
      ASSERT_TRUE(r.has_value());
      ticket = r.value().ticket;
    });
    w.queue.run_until_idle();
  }
  w.queue.run_until_idle();
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->server_name, "dns.example");

  QuicConnection conn(w.net, {w.client_ip, 53006}, w.server_ep, "dns.example", 7);
  std::optional<TlsMode> mode;
  conn.connect(TlsMode::Resume, ticket, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_TRUE(r.has_value()) << r.error();
    mode = r.value().mode;
  });
  w.queue.run_until_idle();
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(*mode, TlsMode::Resume);
}

TEST(Quic, ZeroRttDeliversQueryInFirstFlight) {
  QuicWorld w;
  std::optional<SessionTicket> ticket;
  {
    QuicConnection conn(w.net, {w.client_ip, 53007}, w.server_ep, "dns.example", 8);
    conn.connect(TlsMode::Full, std::nullopt, {},
                 [&](Result<QuicHandshakeInfo> r) { ticket = r.value().ticket; });
    w.queue.run_until_idle();
  }
  ASSERT_TRUE(ticket.has_value());

  QuicConnection conn(w.net, {w.client_ip, 53008}, w.server_ep, "dns.example", 9);
  util::Bytes echoed;
  bool accepted = false;
  double done_ms = 0;
  const double start_ms = to_ms(w.queue.now());
  conn.on_stream([&](std::uint64_t sid, util::Bytes data) {
    EXPECT_EQ(sid, 0u);
    echoed = std::move(data);
    done_ms = to_ms(w.queue.now());
  });
  conn.connect(TlsMode::EarlyData, ticket, util::to_bytes("0rtt-query"),
               [&](Result<QuicHandshakeInfo> r) {
                 ASSERT_TRUE(r.has_value());
                 accepted = r.value().early_data_accepted;
               });
  w.queue.run_until_idle();
  EXPECT_TRUE(accepted);
  EXPECT_EQ(echoed, util::to_bytes("0rtt-query"));
  // The whole exchange fits in ~2 RTT (early flight + echo), under 70 ms.
  EXPECT_LT(done_ms - start_ms, 70.0);
}

TEST(Quic, RejectedEarlyDataIsReplayed) {
  QuicWorld w;
  QuicServerConfig cfg;
  cfg.certificate_names = {"dns.example"};
  cfg.accept_early_data = false;
  w.listener.reset();  // unbind the old listener before binding the new one
  w.listener = std::make_unique<QuicListener>(w.net, w.server_ep, cfg);
  w.listener->on_accept([](const std::shared_ptr<QuicServerConn>& conn) {
    std::weak_ptr<QuicServerConn> weak = conn;
    conn->on_stream([weak](std::uint64_t sid, util::Bytes data) {
      if (auto c = weak.lock()) c->send_stream(sid, std::move(data));
    });
  });

  std::optional<SessionTicket> ticket;
  {
    QuicConnection conn(w.net, {w.client_ip, 53009}, w.server_ep, "dns.example", 10);
    conn.connect(TlsMode::Full, std::nullopt, {},
                 [&](Result<QuicHandshakeInfo> r) { ticket = r.value().ticket; });
    w.queue.run_until_idle();
  }
  ASSERT_TRUE(ticket.has_value());

  QuicConnection conn(w.net, {w.client_ip, 53010}, w.server_ep, "dns.example", 11);
  util::Bytes echoed;
  bool accepted = true;
  conn.on_stream([&](std::uint64_t, util::Bytes data) { echoed = std::move(data); });
  conn.connect(TlsMode::EarlyData, ticket, util::to_bytes("replay-me"),
               [&](Result<QuicHandshakeInfo> r) {
                 ASSERT_TRUE(r.has_value());
                 accepted = r.value().early_data_accepted;
               });
  w.queue.run_until_idle();
  EXPECT_FALSE(accepted);
  EXPECT_EQ(echoed, util::to_bytes("replay-me"));  // replayed on stream 0
}

TEST(Quic, SniMismatchFailsConnect) {
  QuicWorld w;
  QuicConnection conn(w.net, {w.client_ip, 53011}, w.server_ep, "evil.example", 12);
  std::string error;
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_FALSE(r.has_value());
    error = r.error();
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(Quic, RefusalSurfacesAsRefused) {
  QuicWorld w;
  w.listener->set_refuse_probability(1.0);
  QuicConnection conn(w.net, {w.client_ip, 53012}, w.server_ep, "dns.example", 13);
  std::string error;
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_FALSE(r.has_value());
    error = r.error();
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("refused"), std::string::npos);
}

TEST(Quic, SilentDropTimesOut) {
  QuicWorld w;
  w.listener->set_drop_probability(1.0);
  QuicConnection conn(w.net, {w.client_ip, 53013}, w.server_ep, "dns.example", 14);
  std::string error;
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_FALSE(r.has_value());
    error = r.error();
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("timed out"), std::string::npos);
}

TEST(Quic, CloseReleasesServerState) {
  QuicWorld w;
  int closed = 0;
  w.listener->on_close([&](const std::shared_ptr<QuicServerConn>&) { ++closed; });
  {
    QuicConnection conn(w.net, {w.client_ip, 53014}, w.server_ep, "dns.example", 15);
    conn.connect(TlsMode::Full, std::nullopt, {}, [](Result<QuicHandshakeInfo>) {});
    w.queue.run_until_idle();
    EXPECT_EQ(w.listener->connection_count(), 1u);
  }
  w.queue.run_until_idle();
  EXPECT_EQ(closed, 1);
  EXPECT_EQ(w.listener->connection_count(), 0u);
}

// Head-of-line independence: a loss on one stream must not delay another
// stream's delivery (contrast with TCP, where all messages share one pipe).
TEST(Quic, StreamsAreIndependentUnderLoss) {
  QuicWorld w;
  QuicConnection conn(w.net, {w.client_ip, 53015}, w.server_ep, "dns.example", 16);
  std::map<std::uint64_t, double> delivered_at;
  conn.on_stream([&](std::uint64_t sid, util::Bytes) {
    delivered_at[sid] = to_ms(w.queue.now());
  });
  conn.connect(TlsMode::Full, std::nullopt, {}, [&](Result<QuicHandshakeInfo> r) {
    ASSERT_TRUE(r.has_value());
    // Heavy loss: some streams will need PTO recovery, some won't.
    netsim::PathQuirk lossy;
    lossy.extra_loss = 0.35;
    w.net.set_quirk(w.client_ip, w.server_ip, lossy);
    for (int i = 0; i < 12; ++i) (void)conn.send_stream(util::to_bytes("q"));
  });
  w.queue.run_until_idle();
  ASSERT_EQ(delivered_at.size(), 12u);
  // At least one stream completed in ~1 RTT while another needed a PTO
  // (>250 ms): per-stream independence.
  double fastest = 1e9, slowest = 0;
  for (const auto& [sid, t] : delivered_at) {
    fastest = std::min(fastest, t);
    slowest = std::max(slowest, t);
  }
  EXPECT_LT(fastest, 100.0);
  EXPECT_GT(slowest, 250.0);
}

// ---- DoQ client against a full resolver server ------------------------------------

struct DoqWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(43)};
  IpAddr client_ip;
  std::unique_ptr<resolver::ResolverServer> server;

  explicit DoqWorld(resolver::ServerBehavior behavior = {}) {
    behavior.warm_cache_probability = 1.0;
    client_ip = net.attach("client", geo::city::kColumbusOhio,
                           AccessLinkModel::datacenter());
    server = std::make_unique<resolver::ResolverServer>(
        net, "dns.example", resolver::AnycastSite{"Chicago", geo::city::kChicago},
        behavior);
  }
};

TEST(DoqClient, ResolvesOverQuic) {
  DoqWorld w;
  client::DoqClient doq(w.net, w.client_ip, client::QueryOptions{});
  std::optional<client::QueryOutcome> out;
  doq.query(w.server->address(), "dns.example", dns::Name::parse("example.com").value(),
            dns::RecordType::A, [&](client::QueryOutcome o) { out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->ok) << (out->error ? out->error->detail : "");
  EXPECT_EQ(out->protocol, client::Protocol::DoQ);
  EXPECT_GT(out->answers.size(), 0u);
  EXPECT_EQ(w.server->stats().doq_requests, 1u);
}

TEST(DoqClient, ColdDoqBeatsColdDohByOneRtt) {
  DoqWorld w;
  client::DoqClient doq(w.net, w.client_ip, client::QueryOptions{});
  double doq_ms = 0;
  doq.query(w.server->address(), "dns.example", dns::Name::parse("a.com").value(),
            dns::RecordType::A,
            [&](client::QueryOutcome o) { doq_ms = netsim::to_ms(o.timing.total); });
  w.queue.run_until_idle();

  transport::ConnectionPool pool(w.net, w.client_ip);
  client::DohClient doh(w.net, pool, client::QueryOptions{});
  double doh_ms = 0;
  doh.query(w.server->address(), "dns.example", dns::Name::parse("b.com").value(),
            dns::RecordType::A,
            [&](client::QueryOutcome o) { doh_ms = netsim::to_ms(o.timing.total); });
  w.queue.run_until_idle();

  // DoQ cold = 2 RTT, DoH cold = 3 RTT over the same ~8 ms RTT path.
  EXPECT_LT(doq_ms, doh_ms - 4.0);
}

TEST(DoqClient, KeepaliveReusesConnection) {
  DoqWorld w;
  client::QueryOptions options;
  options.reuse = transport::ReusePolicy::Keepalive;
  client::DoqClient doq(w.net, w.client_ip, options);
  std::vector<client::QueryOutcome> outs;
  for (int i = 0; i < 3; ++i) {
    doq.query(w.server->address(), "dns.example", dns::Name::parse("x.com").value(),
              dns::RecordType::A, [&](client::QueryOutcome o) { outs.push_back(o); });
    w.queue.run_until_idle();
  }
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_FALSE(outs[0].timing.connection_reused);
  EXPECT_TRUE(outs[1].timing.connection_reused);
  EXPECT_TRUE(outs[2].timing.connection_reused);
  EXPECT_EQ(doq.live_sessions(), 1u);
  EXPECT_LT(netsim::to_ms(outs[1].timing.total), netsim::to_ms(outs[0].timing.total));
}

TEST(DoqClient, ZeroRttQuery) {
  DoqWorld w;
  client::QueryOptions options;
  options.reuse = transport::ReusePolicy::TicketResumption;
  options.offer_early_data = true;
  client::DoqClient doq(w.net, w.client_ip, options);
  std::vector<client::QueryOutcome> outs;
  auto ask = [&] {
    doq.query(w.server->address(), "dns.example", dns::Name::parse("x.com").value(),
              dns::RecordType::A, [&](client::QueryOutcome o) { outs.push_back(o); });
    w.queue.run_until_idle();
  };
  ask();
  doq.invalidate({w.server->address(), netsim::kPortDoq}, "dns.example");
  ask();
  ASSERT_EQ(outs.size(), 2u);
  ASSERT_TRUE(outs[1].ok) << (outs[1].error ? outs[1].error->detail : "");
  EXPECT_EQ(outs[1].timing.tls_mode, transport::TlsMode::EarlyData);
  // 0-RTT: query + answer in ~1 RTT, faster than the full-handshake query.
  EXPECT_LT(netsim::to_ms(outs[1].timing.total), netsim::to_ms(outs[0].timing.total) - 4.0);
}

TEST(DoqClient, ServerWithoutDoqTimesOut) {
  resolver::ServerBehavior b;
  b.supports_doq = false;
  DoqWorld w(b);
  client::QueryOptions options;
  options.timeout = std::chrono::seconds(2);
  client::DoqClient doq(w.net, w.client_ip, options);
  std::optional<client::QueryOutcome> out;
  doq.query(w.server->address(), "dns.example", dns::Name::parse("x.com").value(),
            dns::RecordType::A, [&](client::QueryOutcome o) { out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->ok);
  EXPECT_EQ(out->error->error_class, client::QueryErrorClass::ConnectTimeout);
}

}  // namespace
}  // namespace ednsm::transport
