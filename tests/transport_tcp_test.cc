#include <gtest/gtest.h>

#include "geo/geodb.h"
#include "transport/tcp.h"

namespace ednsm::transport {
namespace {

using netsim::AccessLinkModel;
using netsim::Endpoint;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;
using netsim::to_ms;

struct TcpWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(7)};
  IpAddr client_ip, server_ip;
  Endpoint server_ep;
  std::unique_ptr<TcpListener> listener;

  explicit TcpWorld(geo::GeoPoint server_loc = geo::city::kFrankfurt) {
    client_ip = net.attach("client", geo::city::kChicago, AccessLinkModel::datacenter());
    server_ip = net.attach("server", server_loc, AccessLinkModel::datacenter());
    server_ep = Endpoint{server_ip, 443};
    listener = std::make_unique<TcpListener>(net, server_ep);
  }
};

TEST(TcpSegment, CodecRoundTrip) {
  TcpSegment seg;
  seg.type = TcpSegmentType::Data;
  seg.conn_id = 0xDEADBEEF;
  seg.msg_id = 42;
  seg.seq = 3;
  seg.total = 9;
  seg.data = util::to_bytes("payload");
  auto decoded = TcpSegment::decode(seg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().type, TcpSegmentType::Data);
  EXPECT_EQ(decoded.value().conn_id, 0xDEADBEEFu);
  EXPECT_EQ(decoded.value().msg_id, 42u);
  EXPECT_EQ(decoded.value().seq, 3);
  EXPECT_EQ(decoded.value().total, 9);
  EXPECT_EQ(decoded.value().data, util::to_bytes("payload"));
}

TEST(TcpSegment, DecodeRejectsGarbage) {
  EXPECT_FALSE(TcpSegment::decode(util::to_bytes("xx")).has_value());
  EXPECT_FALSE(TcpSegment::decode(util::Bytes{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
                   .has_value());  // type 0 invalid
}

TEST(Tcp, HandshakeCostsOneRtt) {
  TcpWorld w;
  TcpConnection conn(w.net, {w.client_ip, 50000}, w.server_ep, 1);
  bool connected = false;
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    connected = true;
  });
  w.queue.run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(conn.established());
  // Chicago->Frankfurt RTT floor ~125 ms; handshake is exactly one RTT.
  EXPECT_GT(to_ms(w.queue.now()), 110.0);
  EXPECT_LT(to_ms(w.queue.now()), 200.0);
}

TEST(Tcp, RefusedConnectionReportsRst) {
  TcpWorld w;
  w.listener->set_refuse(true);
  TcpConnection conn(w.net, {w.client_ip, 50001}, w.server_ep, 2);
  std::string error;
  conn.connect([&](Result<void> r) {
    ASSERT_FALSE(r.has_value());
    error = r.error();
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("refused"), std::string::npos);
}

TEST(Tcp, NoListenerMeansConnectTimeout) {
  TcpWorld w;
  w.listener.reset();  // nothing bound
  TcpConnection conn(w.net, {w.client_ip, 50002}, w.server_ep, 3);
  std::string error;
  conn.connect([&](Result<void> r) {
    ASSERT_FALSE(r.has_value());
    error = r.error();
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("timed out"), std::string::npos);
  // 3 SYNs with 1s/2s/4s backoff -> fails at ~7s.
  EXPECT_GT(to_ms(w.queue.now()), 6500.0);
}

TEST(Tcp, SynDropStillConnectsViaRetransmit) {
  // Per-attempt failure hashing must NOT be confused by SYN loss on the
  // path: a lossy path drops individual SYNs, the retransmit gets through.
  EventQueue queue;
  netsim::Network net(queue, Rng(21));
  AccessLinkModel lossy = AccessLinkModel::datacenter();
  lossy.loss_probability = 0.9;  // drop most packets... client side only
  const IpAddr client_ip = net.attach("c", geo::city::kChicago, lossy);
  const IpAddr server_ip = net.attach("s", geo::city::kChicago,
                                      AccessLinkModel::datacenter());
  TcpListener listener(net, {server_ip, 443});
  // With 3 SYN transmissions at 90% loss, success is unlikely per-connection,
  // but over many attempts some must succeed and none may hang forever.
  int outcomes = 0;
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (int i = 0; i < 30; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(
        net, Endpoint{client_ip, static_cast<std::uint16_t>(50100 + i)},
        Endpoint{server_ip, 443}, static_cast<std::uint32_t>(100 + i)));
    conns.back()->connect([&](Result<void>) { ++outcomes; });
  }
  queue.run_until_idle();
  EXPECT_EQ(outcomes, 30);  // every connect() resolves, success or failure
}

TEST(Tcp, MessageRoundTrip) {
  TcpWorld w;
  util::Bytes server_received;
  w.listener->on_accept([&](TcpServerConn& sc) {
    sc.on_message([&, &sc = sc](util::Bytes data) {
      server_received = data;
      sc.send_message(util::to_bytes("response"));
    });
  });

  TcpConnection conn(w.net, {w.client_ip, 50003}, w.server_ep, 4);
  util::Bytes client_received;
  conn.on_message([&](util::Bytes data) { client_received = data; });
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    conn.send_message(util::to_bytes("request"));
  });
  w.queue.run_until_idle();
  EXPECT_EQ(server_received, util::to_bytes("request"));
  EXPECT_EQ(client_received, util::to_bytes("response"));
}

TEST(Tcp, LargeMessageSegmentsAndReassembles) {
  TcpWorld w;
  util::Bytes big(10 * kTcpMss + 123);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i % 251);

  util::Bytes received;
  w.listener->on_accept([&](TcpServerConn& sc) {
    sc.on_message([&](util::Bytes data) { received = std::move(data); });
  });
  TcpConnection conn(w.net, {w.client_ip, 50004}, w.server_ep, 5);
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    conn.send_message(big);
  });
  w.queue.run_until_idle();
  EXPECT_EQ(received, big);
  EXPECT_GE(conn.stats().data_segments_sent, 11u);
}

TEST(Tcp, EmptyMessageDelivered) {
  TcpWorld w;
  bool got = false;
  w.listener->on_accept([&](TcpServerConn& sc) {
    sc.on_message([&](util::Bytes data) {
      got = true;
      EXPECT_TRUE(data.empty());
    });
  });
  TcpConnection conn(w.net, {w.client_ip, 50005}, w.server_ep, 6);
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    conn.send_message({});
  });
  w.queue.run_until_idle();
  EXPECT_TRUE(got);
}

TEST(Tcp, LossRecoveredByRetransmission) {
  EventQueue queue;
  netsim::Network net(queue, Rng(33));
  const IpAddr c = net.attach("c", geo::city::kChicago, AccessLinkModel::datacenter());
  const IpAddr s = net.attach("s", geo::city::kChicago, AccessLinkModel::datacenter());
  TcpListener listener(net, {s, 443});
  util::Bytes big(20 * kTcpMss);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i & 0xff);

  util::Bytes received;
  listener.on_accept([&](TcpServerConn& sc) {
    sc.on_message([&](util::Bytes data) { received = std::move(data); });
  });
  TcpConnection conn(net, {c, 50006}, {s, 443}, 7);
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    // Make the established path lossy for the data phase only: the handshake
    // must not be flaky, or the test would measure connect retries instead.
    netsim::PathQuirk lossy;
    lossy.extra_loss = 0.25;
    net.set_quirk(c, s, lossy);
    conn.send_message(big);
  });
  queue.run_until_idle();
  EXPECT_EQ(received, big);
  EXPECT_GT(conn.stats().data_retransmissions, 0u);
}

TEST(Tcp, SequentialMessagesStayOrderedPerMessage) {
  TcpWorld w;
  std::vector<std::string> messages;
  w.listener->on_accept([&](TcpServerConn& sc) {
    sc.on_message([&](util::Bytes data) { messages.push_back(util::as_string(data)); });
  });
  TcpConnection conn(w.net, {w.client_ip, 50007}, w.server_ep, 8);
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    conn.send_message(util::to_bytes("first"));
    conn.send_message(util::to_bytes("second"));
    conn.send_message(util::to_bytes("third"));
  });
  w.queue.run_until_idle();
  ASSERT_EQ(messages.size(), 3u);
  // Message *delivery* order can swap under jitter, but all must arrive.
  std::sort(messages.begin(), messages.end());
  EXPECT_EQ(messages, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(Tcp, FinReleasesServerConnection) {
  TcpWorld w;
  int closed = 0;
  w.listener->on_accept([](TcpServerConn&) {});
  w.listener->on_close([&](TcpServerConn&) { ++closed; });
  {
    TcpConnection conn(w.net, {w.client_ip, 50008}, w.server_ep, 9);
    conn.connect([](Result<void>) {});
    w.queue.run_until_idle();
    EXPECT_EQ(w.listener->connection_count(), 1u);
  }  // destructor sends FIN
  w.queue.run_until_idle();
  EXPECT_EQ(closed, 1);
  EXPECT_EQ(w.listener->connection_count(), 0u);
}

TEST(Tcp, ProbabilisticRefusalIsPerAttempt) {
  TcpWorld w;
  w.listener->set_refuse_probability(0.5);
  int refused = 0, ok = 0;
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (int i = 0; i < 200; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(
        w.net, Endpoint{w.client_ip, static_cast<std::uint16_t>(51000 + i)}, w.server_ep,
        static_cast<std::uint32_t>(1000 + i)));
    conns.back()->connect([&](Result<void> r) { (r.has_value() ? ok : refused)++; });
  }
  w.queue.run_until_idle();
  EXPECT_EQ(ok + refused, 200);
  EXPECT_GT(refused, 60);
  EXPECT_LT(refused, 140);
}

}  // namespace
}  // namespace ednsm::transport
