#include <gtest/gtest.h>

#include "geo/geodb.h"
#include "transport/tls.h"

namespace ednsm::transport {
namespace {

using netsim::AccessLinkModel;
using netsim::Endpoint;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;
using netsim::to_ms;

struct TlsWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(9)};
  IpAddr client_ip, server_ip;
  Endpoint server_ep;
  std::unique_ptr<TcpListener> listener;
  std::vector<std::unique_ptr<TlsServerSession>> server_sessions;
  TlsServerConfig server_config;

  TlsWorld() {
    client_ip = net.attach("client", geo::city::kChicago, AccessLinkModel::datacenter());
    server_ip = net.attach("server", geo::city::kAshburn, AccessLinkModel::datacenter());
    server_ep = Endpoint{server_ip, 443};
    listener = std::make_unique<TcpListener>(net, server_ep);
    server_config.certificate_names = {"dns.example"};
    listener->on_accept([this](TcpServerConn& conn) {
      server_sessions.push_back(
          std::make_unique<TlsServerSession>(queue, net.rng(), conn, server_config));
      auto& session = *server_sessions.back();
      session.on_data([&session](util::Bytes data) {
        session.send(data);  // echo server
      });
    });
  }
};

TEST(TlsRecord, CodecRoundTrip) {
  TlsRecord rec;
  rec.type = TlsContentType::ApplicationData;
  rec.payload = util::to_bytes("hello");
  const util::Bytes wire = rec.encode();
  EXPECT_EQ(wire.size(), 5u + 5u + 16u);  // header + payload + tag
  auto decoded = TlsRecord::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().payload, rec.payload);
  EXPECT_EQ(decoded.value().type, TlsContentType::ApplicationData);
}

TEST(TlsRecord, DecodeRejectsBadVersionAndType) {
  TlsRecord rec;
  rec.payload = util::to_bytes("x");
  util::Bytes wire = rec.encode();
  wire[1] = 0x02;  // version
  EXPECT_FALSE(TlsRecord::decode(wire).has_value());
  wire = rec.encode();
  wire[0] = 99;  // content type
  EXPECT_FALSE(TlsRecord::decode(wire).has_value());
  wire = rec.encode();
  wire.pop_back();  // truncate tag
  EXPECT_FALSE(TlsRecord::decode(wire).has_value());
}

TEST(Tls, FullHandshakeAndEcho) {
  TlsWorld w;
  TcpConnection conn(w.net, {w.client_ip, 52000}, w.server_ep, 1);
  TlsClient tls(conn, {"dns.example"});

  std::optional<TlsHandshakeInfo> info;
  util::Bytes echoed;
  tls.on_data([&](util::Bytes data) { echoed = std::move(data); });
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    tls.handshake(TlsMode::Full, std::nullopt, {}, [&](Result<TlsHandshakeInfo> hs) {
      ASSERT_TRUE(hs.has_value()) << hs.error();
      info = hs.value();
      tls.send(util::to_bytes("app-data"));
    });
  });
  w.queue.run_until_idle();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->mode, TlsMode::Full);
  ASSERT_TRUE(info->ticket.has_value());
  EXPECT_EQ(info->ticket->server_name, "dns.example");
  EXPECT_EQ(echoed, util::to_bytes("app-data"));
  EXPECT_TRUE(tls.established());
}

TEST(Tls, CertificateMismatchFailsHandshake) {
  TlsWorld w;
  TcpConnection conn(w.net, {w.client_ip, 52001}, w.server_ep, 2);
  TlsClient tls(conn, {"wrong.example"});
  std::string error;
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    tls.handshake(TlsMode::Full, std::nullopt, {}, [&](Result<TlsHandshakeInfo> hs) {
      ASSERT_FALSE(hs.has_value());
      error = hs.error();
    });
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("certificate name mismatch"), std::string::npos);
  EXPECT_FALSE(tls.established());
}

TEST(Tls, ResumptionRequiresTicket) {
  TlsWorld w;
  TcpConnection conn(w.net, {w.client_ip, 52002}, w.server_ep, 3);
  TlsClient tls(conn, {"dns.example"});
  std::string error;
  tls.handshake(TlsMode::Resume, std::nullopt, {}, [&](Result<TlsHandshakeInfo> hs) {
    ASSERT_FALSE(hs.has_value());
    error = hs.error();
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("without a valid ticket"), std::string::npos);
}

TEST(Tls, ResumptionWithTicketCompletes) {
  TlsWorld w;
  // First connection: get a ticket.
  std::optional<SessionTicket> ticket;
  {
    TcpConnection conn(w.net, {w.client_ip, 52003}, w.server_ep, 4);
    TlsClient tls(conn, {"dns.example"});
    conn.connect([&](Result<void> r) {
      ASSERT_TRUE(r.has_value());
      tls.handshake(TlsMode::Full, std::nullopt, {}, [&](Result<TlsHandshakeInfo> hs) {
        ASSERT_TRUE(hs.has_value());
        ticket = hs.value().ticket;
      });
    });
    w.queue.run_until_idle();
  }
  w.queue.run_until_idle();  // drain FIN
  ASSERT_TRUE(ticket.has_value());

  TcpConnection conn(w.net, {w.client_ip, 52004}, w.server_ep, 5);
  TlsClient tls(conn, {"dns.example"});
  std::optional<TlsMode> mode;
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    tls.handshake(TlsMode::Resume, ticket, {}, [&](Result<TlsHandshakeInfo> hs) {
      ASSERT_TRUE(hs.has_value()) << hs.error();
      mode = hs.value().mode;
    });
  });
  w.queue.run_until_idle();
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(*mode, TlsMode::Resume);
}

TEST(Tls, EarlyDataReachesServerWithHandshake) {
  TlsWorld w;
  std::optional<SessionTicket> ticket;
  {
    TcpConnection conn(w.net, {w.client_ip, 52005}, w.server_ep, 6);
    TlsClient tls(conn, {"dns.example"});
    conn.connect([&](Result<void> r) {
      ASSERT_TRUE(r.has_value());
      tls.handshake(TlsMode::Full, std::nullopt, {}, [&](Result<TlsHandshakeInfo> hs) {
        ASSERT_TRUE(hs.has_value());
        ticket = hs.value().ticket;
      });
    });
    w.queue.run_until_idle();
  }
  ASSERT_TRUE(ticket.has_value());

  TcpConnection conn(w.net, {w.client_ip, 52006}, w.server_ep, 7);
  TlsClient tls(conn, {"dns.example"});
  util::Bytes echoed;
  bool early_accepted = false;
  tls.on_data([&](util::Bytes data) { echoed = std::move(data); });
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    tls.handshake(TlsMode::EarlyData, ticket, util::to_bytes("0rtt-query"),
                  [&](Result<TlsHandshakeInfo> hs) {
                    ASSERT_TRUE(hs.has_value());
                    early_accepted = hs.value().early_data_accepted;
                  });
  });
  w.queue.run_until_idle();
  EXPECT_TRUE(early_accepted);
  EXPECT_EQ(echoed, util::to_bytes("0rtt-query"));  // echo server answered it
}

TEST(Tls, EarlyDataRejectedWhenServerDisablesIt) {
  TlsWorld w;
  w.server_config.accept_early_data = false;
  std::optional<SessionTicket> ticket;
  {
    TcpConnection conn(w.net, {w.client_ip, 52007}, w.server_ep, 8);
    TlsClient tls(conn, {"dns.example"});
    conn.connect([&](Result<void> r) {
      ASSERT_TRUE(r.has_value());
      tls.handshake(TlsMode::Full, std::nullopt, {},
                    [&](Result<TlsHandshakeInfo> hs) { ticket = hs.value().ticket; });
    });
    w.queue.run_until_idle();
  }
  ASSERT_TRUE(ticket.has_value());

  TcpConnection conn(w.net, {w.client_ip, 52008}, w.server_ep, 9);
  TlsClient tls(conn, {"dns.example"});
  bool early_accepted = true;
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    tls.handshake(TlsMode::EarlyData, ticket, util::to_bytes("0rtt"),
                  [&](Result<TlsHandshakeInfo> hs) {
                    ASSERT_TRUE(hs.has_value());
                    early_accepted = hs.value().early_data_accepted;
                  });
  });
  w.queue.run_until_idle();
  EXPECT_FALSE(early_accepted);
}

TEST(Tls, HandshakeFailureInjection) {
  TlsWorld w;
  w.server_config.handshake_failure_probability = 1.0;
  TcpConnection conn(w.net, {w.client_ip, 52009}, w.server_ep, 10);
  TlsClient tls(conn, {"dns.example"});
  std::string error;
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    tls.handshake(TlsMode::Full, std::nullopt, {}, [&](Result<TlsHandshakeInfo> hs) {
      ASSERT_FALSE(hs.has_value());
      error = hs.error();
    });
  });
  w.queue.run_until_idle();
  EXPECT_NE(error.find("alert"), std::string::npos);
}

TEST(Tls, HandshakeCostsOneExtraRtt) {
  TlsWorld w;
  TcpConnection conn(w.net, {w.client_ip, 52010}, w.server_ep, 11);
  TlsClient tls(conn, {"dns.example"});
  double connect_done_ms = 0, handshake_done_ms = 0;
  conn.connect([&](Result<void> r) {
    ASSERT_TRUE(r.has_value());
    connect_done_ms = to_ms(w.queue.now());
    tls.handshake(TlsMode::Full, std::nullopt, {}, [&](Result<TlsHandshakeInfo> hs) {
      ASSERT_TRUE(hs.has_value());
      handshake_done_ms = to_ms(w.queue.now());
    });
  });
  w.queue.run_until_idle();
  // TLS adds ~1 RTT (plus sub-ms crypto). Chicago-Ashburn RTT is ~20-30 ms.
  const double tls_cost = handshake_done_ms - connect_done_ms;
  EXPECT_GT(tls_cost, 0.6 * connect_done_ms);
  EXPECT_LT(tls_cost, 2.5 * connect_done_ms);
}

}  // namespace
}  // namespace ednsm::transport
