#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/result.h"
#include "util/strings.h"

namespace ednsm {
namespace {

// ---- strings ---------------------------------------------------------------

TEST(Strings, SplitBasic) {
  const auto parts = util::split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = util::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = util::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyInput) {
  const auto parts = util::split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitTrailingSeparator) {
  const auto parts = util::split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  hello  "), "hello");
  EXPECT_EQ(util::trim("\t\n x \r"), "x");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::trim("nospace"), "nospace");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(util::to_lower("DNS.Google"), "dns.google");
  EXPECT_EQ(util::to_lower(""), "");
  EXPECT_EQ(util::to_lower("123-_"), "123-_");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(util::iequals("DoH", "dOh"));
  EXPECT_TRUE(util::iequals("", ""));
  EXPECT_FALSE(util::iequals("a", "ab"));
  EXPECT_FALSE(util::iequals("abc", "abd"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(util::starts_with("dns=abc", "dns="));
  EXPECT_FALSE(util::starts_with("dn", "dns="));
  EXPECT_TRUE(util::ends_with("dns.quad9.net", "quad9.net"));
  EXPECT_FALSE(util::ends_with("net", "quad9.net"));
  EXPECT_TRUE(util::ends_with("x", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(util::join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(util::join({}, "."), "");
  EXPECT_EQ(util::join({"only"}, "."), "only");
}

TEST(Strings, ParseU64Valid) {
  unsigned long long v = 0;
  EXPECT_TRUE(util::parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(util::parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, 18446744073709551615ULL);
}

TEST(Strings, ParseU64Invalid) {
  unsigned long long v = 0;
  EXPECT_FALSE(util::parse_u64("", v));
  EXPECT_FALSE(util::parse_u64("-1", v));
  EXPECT_FALSE(util::parse_u64("12a", v));
  EXPECT_FALSE(util::parse_u64("18446744073709551616", v));  // 2^64
  EXPECT_FALSE(util::parse_u64(" 1", v));
}

// ---- bytes -----------------------------------------------------------------

TEST(Bytes, HexRoundTrip) {
  const util::Bytes data = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  const std::string hex = util::to_hex(data);
  EXPECT_EQ(hex, "00deadbeefff");
  util::Bytes back;
  ASSERT_TRUE(util::from_hex(hex, back));
  EXPECT_EQ(back, data);
}

TEST(Bytes, FromHexUppercase) {
  util::Bytes out;
  ASSERT_TRUE(util::from_hex("DEADBEEF", out));
  EXPECT_EQ(out, (util::Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, FromHexRejectsOddLength) {
  util::Bytes out;
  EXPECT_FALSE(util::from_hex("abc", out));
}

TEST(Bytes, FromHexRejectsNonHex) {
  util::Bytes out;
  EXPECT_FALSE(util::from_hex("zz", out));
}

TEST(Bytes, StringConversions) {
  const util::Bytes b = util::to_bytes("hello");
  EXPECT_EQ(util::as_string(b), "hello");
  EXPECT_TRUE(util::to_bytes("").empty());
}

TEST(Bytes, Fnv1aStability) {
  // Known FNV-1a vectors.
  EXPECT_EQ(util::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(util::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(util::fnv1a("dns.google"), util::fnv1a("dns.googlf"));
}

// ---- Result ----------------------------------------------------------------

Result<int> parse_positive(int x) {
  if (x > 0) return x;
  return Err{std::string("not positive")};
}

TEST(Result, ValueAccess) {
  auto r = parse_positive(5);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, ErrorAccess) {
  auto r = parse_positive(-1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), "not positive");
}

TEST(Result, WrongAccessThrows) {
  auto ok = parse_positive(1);
  EXPECT_THROW((void)ok.error(), BadResultAccess);
  auto bad = parse_positive(0);
  EXPECT_THROW((void)bad.value(), BadResultAccess);
}

TEST(Result, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(9), 3);
  EXPECT_EQ(parse_positive(-3).value_or(9), 9);
}

TEST(Result, Map) {
  auto doubled = parse_positive(4).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.has_value());
  EXPECT_EQ(doubled.value(), 8);

  auto failed = parse_positive(-4).map([](int v) { return v * 2; });
  EXPECT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error(), "not positive");
}

TEST(Result, AndThen) {
  auto chained = parse_positive(4).and_then([](int v) { return parse_positive(v - 10); });
  ASSERT_FALSE(chained.has_value());

  auto ok = parse_positive(4).and_then([](int v) { return parse_positive(v + 10); });
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 14);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.has_value());
  Result<void> bad = Err{std::string("boom")};
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "boom");
}

TEST(Result, SameValueAndErrorType) {
  Result<std::string, std::string> ok = std::string("value");
  ASSERT_TRUE(ok.has_value());
  Result<std::string, std::string> bad = Err{std::string("error")};
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "error");
}

}  // namespace
}  // namespace ednsm
