#include <gtest/gtest.h>

#include "web/page_load.h"

namespace ednsm::web {
namespace {

TEST(PageSpec, GenerationIsDeterministic) {
  const PageSpec a = make_page("news.example.com", 40, 8, 3, 7);
  const PageSpec b = make_page("news.example.com", 40, 8, 3, 7);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].domain, b.objects[i].domain);
    EXPECT_EQ(a.objects[i].level, b.objects[i].level);
  }
}

TEST(PageSpec, ShapeRespectsParameters) {
  const PageSpec page = make_page("shop.example.com", 50, 10, 4, 3);
  EXPECT_EQ(page.objects.size(), 50u);
  EXPECT_LE(page.unique_domains(), 10u);
  EXPECT_GE(page.unique_domains(), 3u);
  EXPECT_EQ(page.objects[0].level, 0);
  EXPECT_EQ(page.objects[0].domain, "shop.example.com");
  for (const PageObject& o : page.objects) {
    EXPECT_GE(o.level, 0);
    EXPECT_LE(o.level, 4);
  }
}

struct PltFixture : ::testing::Test {
  core::SimWorld world{71};
  PageSpec page = make_page("news.example.com", 30, 8, 3, 11);
};

TEST_F(PltFixture, DnsShareIsPlausible) {
  PageLoadSimulator sim(world, "home-chicago-1", "dns.google");
  const PageLoadResult r = sim.load(page);
  EXPECT_GT(r.plt_ms, 0.0);
  EXPECT_GT(r.dns_ms, 0.0);
  EXPECT_GT(r.dns_lookups, 0);
  // WProf: DNS is a noticeable but minority share of the critical path.
  EXPECT_GT(r.dns_share(), 0.02);
  EXPECT_LT(r.dns_share(), 0.6);
}

TEST_F(PltFixture, SlowResolverInflatesPlt) {
  PageLoadSimulator fast(world, "home-chicago-1", "dns.google");
  PageLoadSimulator slow(world, "home-chicago-1", "doh.ffmuc.net");  // Munich unicast
  const PageLoadResult rf = fast.load(page);
  const PageLoadResult rs = slow.load(page);
  EXPECT_GT(rs.dns_ms, rf.dns_ms * 2.0);
  EXPECT_GT(rs.plt_ms, rf.plt_ms);
}

TEST_F(PltFixture, SecondVisitIsWarm) {
  PageLoadSimulator sim(world, "home-chicago-1", "dns.google");
  const PageLoadResult first = sim.load(page);
  const PageLoadResult second = sim.load(page);  // browser DNS cache warm
  EXPECT_EQ(second.dns_lookups, 0);
  EXPECT_LT(second.dns_ms, 0.001);
  EXPECT_LT(second.plt_ms, first.plt_ms);
}

TEST_F(PltFixture, ClearBrowserCacheForcesLookups) {
  PageLoadSimulator sim(world, "home-chicago-1", "dns.google");
  (void)sim.load(page);
  sim.clear_browser_cache();
  const PageLoadResult again = sim.load(page);
  EXPECT_GT(again.dns_lookups, 0);
}

TEST_F(PltFixture, CdnMappingPenalizesRemoteResolvers) {
  // Otto et al.: a distant resolver maps the client to distant CDN replicas,
  // so the *fetch* share grows too, not just the DNS share.
  PageLoadSimulator near_resolver(world, "home-chicago-1", "dns.google");
  PageLoadSimulator far_resolver(world, "home-chicago-1", "dns.alidns.com");  // Asia
  const PageLoadResult rn = near_resolver.load(page);
  const PageLoadResult rff = far_resolver.load(page);
  EXPECT_GT(rff.fetch_ms, rn.fetch_ms + 10.0);
}

TEST_F(PltFixture, ConnectionReuseShrinksDnsShare) {
  PageLoadOptions reuse;
  reuse.query_options.reuse = transport::ReusePolicy::Keepalive;
  PageLoadSimulator cold(world, "home-chicago-1", "dns.quad9.net");
  PageLoadSimulator warm(world, "home-chicago-2", "dns.quad9.net", reuse);
  const PageLoadResult rc = cold.load(page);
  const PageLoadResult rw = warm.load(page);
  EXPECT_LT(rw.dns_ms, rc.dns_ms);
}

}  // namespace
}  // namespace ednsm::web
