// ednsm-bench: timed benchmark suites with a machine-readable summary, so
// the committed BENCH_*.json perf ledger can be tracked across releases and
// gated in CI (see tools/ednsm_perfgate.cc).
//
// Usage:
//   ednsm_bench [--suite fig2|monitor|micro]
//               [--vantages ids] [--rounds N] [--seed S] [--threads N]
//               [--repeat K] [--json] [--out BENCH_fig2.json]
//               [--trace-overhead 1] [--profile 1]
//
// Suites:
//   fig2 (default) — the paper's Fig. 2 workload: the full Appendix A.2
//     registry from the four global vantages, 30 rounds, on the staged
//     pipeline engine (--threads N; 0 = legacy single-world engine).
//   monitor — the longitudinal epoch driver: a 7-resolver watchlist over 30
//     daily epochs with one scripted outage (bench_monitor's scenario).
//   micro — engine micro-costs: uncontended SPSC ring throughput plus a
//     minimal one-vantage pipeline campaign.
//
// Every suite emits a "header" object pinning the exact workload (suite,
// seed, threads, effective_threads, rounds) — the attribution key the perf
// gate matches before comparing numbers — plus deterministic simulation
// fields (records/pings/error_rate/...) and the measured wall_ms.
//
// --trace-overhead (fig2 only) re-runs the campaign with tracing enabled and
// adds trace_on_wall_ms / trace_overhead_pct / trace_identical to the summary
// (trace_identical asserts the simulated output is byte-identical either
// way). --profile prints a wall-clock stage breakdown to stderr. --repeat
// reruns the timed section K times and reports the fastest wall time
// (steadier on loaded machines). --json (or --out) emits the summary as
// JSON; --out also writes it to the given path.
//
// Exit codes: 0 ok, 1 bad usage, 3 I/O error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "util/json.h"
#include "core/parallel_campaign.h"
#include "lint/lint.h"
#include "monitor/diagnose.h"
#include "monitor/monitor.h"
#include "obs/profile.h"
#include "obs/runtime.h"
#include "resolver/registry.h"
#include "stats/quantile.h"
#include "util/spsc_ring.h"
#include "util/strings.h"

using namespace ednsm;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  for (std::string_view part : util::split(csv, ',')) {
    if (!part.empty()) out.emplace_back(part);
  }
  return out;
}

// ednsm-lint: allow(determinism-wallclock) — harness-side wall timing of
// the simulation; never feeds simulated results.
using WallClock = std::chrono::steady_clock;

double elapsed_ms(WallClock::time_point start) {
  // ednsm-lint: allow(determinism-wallclock) — harness wall timing
  return std::chrono::duration<double, std::milli>(WallClock::now() - start).count();
}

// Attribution header: the fields that pin a ledger row to an exact workload.
// seed + threads + rounds determine the run completely; effective_threads is
// the worker count after the engine's clamp to [1, #shards], so rows from
// over-provisioned runs compare honestly. The perf gate refuses to compare
// rows whose headers differ.
core::Json make_header(const std::string& bench, std::uint64_t seed, int threads,
                       std::size_t shards, int rounds) {
  core::JsonObject header;
  header["bench"] = core::Json(bench);
  header["schema_version"] = core::Json(3.0);
  header["seed"] = core::Json(static_cast<double>(seed));
  header["threads"] = core::Json(static_cast<double>(threads));
  const std::size_t effective =
      threads <= 0 ? 1 : std::min(static_cast<std::size_t>(threads), std::max<std::size_t>(shards, 1));
  header["effective_threads"] = core::Json(static_cast<double>(effective));
  header["rounds"] = core::Json(static_cast<double>(rounds));
  return core::Json(std::move(header));
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  bool json_to_stdout = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_to_stdout = true;
      continue;
    }
    if (!arg.starts_with("--") || i + 1 >= argc) {
      std::fprintf(stderr,
                   "usage: ednsm_bench [--suite fig2|monitor|micro] [--vantages ids] "
                   "[--rounds N] [--seed S] [--threads N] [--repeat K] [--json] [--out file]\n");
      return 1;
    }
    options[std::string(arg.substr(2))] = argv[++i];
  }

  const std::string suite =
      options.contains("suite") ? options.at("suite") : std::string("fig2");

  std::vector<std::string> vantages = {"home-chicago-1", "ec2-ohio", "ec2-frankfurt",
                                       "ec2-seoul"};
  if (const auto it = options.find("vantages"); it != options.end()) {
    vantages = split_list(it->second);
  }
  int rounds = suite == "monitor" ? 3 : 30;
  if (const auto it = options.find("rounds"); it != options.end()) {
    rounds = std::atoi(it->second.c_str());
  }
  std::uint64_t seed = 20250704;
  if (const auto it = options.find("seed"); it != options.end()) {
    seed = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  int threads = 0;
  if (const auto it = options.find("threads"); it != options.end()) {
    threads = std::atoi(it->second.c_str());
  }
  int repeat = 1;
  if (const auto it = options.find("repeat"); it != options.end()) {
    repeat = std::max(1, std::atoi(it->second.c_str()));
  }

  const bool trace_overhead = options.contains("trace-overhead");
  const bool profile = options.contains("profile");

  obs::WallProfiler profiler;
  core::JsonObject o;

  if (suite == "fig2") {
    core::MeasurementSpec spec;
    {
      const auto scope = profiler.scope("build-spec");
      for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
      spec.vantage_ids = vantages;
      spec.rounds = rounds;
      spec.seed = seed;
    }
    if (auto valid = spec.validate(); !valid) {
      std::fprintf(stderr, "invalid bench spec: %s\n", valid.error().c_str());
      return 1;
    }

    // One timed campaign run; `with_trace` enables tracing for the overhead
    // comparison (the trace itself is discarded — only the cost matters).
    const auto timed_run = [&](bool with_trace, double& wall_ms) {
      core::CampaignResult r;
      const auto start = WallClock::now();
      if (threads <= 0) {
        core::SimWorld world(seed);
        if (with_trace) world.tracer().enable();
        r = core::CampaignRunner(world, spec).run();
      } else {
        core::CampaignObsOptions obs_options;
        obs_options.trace = with_trace;
        core::CampaignObsData obs_data;
        r = core::run_parallel_campaign(spec, threads, obs_options, &obs_data);
      }
      wall_ms = elapsed_ms(start);
      return r;
    };

    core::CampaignResult result;
    double best_wall_ms = 0.0;
    {
      const auto scope = profiler.scope("campaign");
      for (int run = 0; run < repeat; ++run) {
        double wall_ms = 0.0;
        result = timed_run(false, wall_ms);
        if (run == 0 || wall_ms < best_wall_ms) best_wall_ms = wall_ms;
      }
    }

    double best_traced_wall_ms = 0.0;
    bool trace_identical = true;
    if (trace_overhead) {
      const auto scope = profiler.scope("campaign-traced");
      core::CampaignResult traced;
      for (int run = 0; run < repeat; ++run) {
        double wall_ms = 0.0;
        traced = timed_run(true, wall_ms);
        if (run == 0 || wall_ms < best_traced_wall_ms) best_traced_wall_ms = wall_ms;
      }
      trace_identical = traced.to_json().dump(0) == result.to_json().dump(0);
    }

    const double records_per_sec =
        best_wall_ms > 0.0 ? static_cast<double>(result.records.size()) / (best_wall_ms / 1000.0)
                           : 0.0;

    o["bench"] = core::Json(std::string("paper_campaign"));
    o["header"] = make_header("paper_campaign", seed, threads, vantages.size(), rounds);
    o["engine"] = core::Json(std::string(threads > 0 ? "sharded" : "legacy"));
    o["threads"] = core::Json(static_cast<double>(threads));
    o["resolvers"] = core::Json(static_cast<double>(spec.resolvers.size()));
    o["vantages"] = core::Json(static_cast<double>(vantages.size()));
    o["rounds"] = core::Json(static_cast<double>(rounds));
    o["seed"] = core::Json(static_cast<double>(seed));
    o["repeat"] = core::Json(static_cast<double>(repeat));
    o["records"] = core::Json(static_cast<double>(result.records.size()));
    o["pings"] = core::Json(static_cast<double>(result.pings.size()));
    o["error_rate"] = core::Json(result.availability.overall().error_rate());
    o["wall_ms"] = core::Json(best_wall_ms);
    o["records_per_sec"] = core::Json(records_per_sec);
    if (trace_overhead) {
      o["trace_on_wall_ms"] = core::Json(best_traced_wall_ms);
      o["trace_overhead_pct"] = core::Json(
          best_wall_ms > 0.0 ? 100.0 * (best_traced_wall_ms - best_wall_ms) / best_wall_ms
                             : 0.0);
      o["trace_identical"] = core::Json(trace_identical);
    }

    // Cold/warm medians of simulated response time, keyed off the per-record
    // reuse flag the session layer stamps. Either population can be empty
    // (e.g. reuse=None campaigns have no warm records); its median is omitted.
    std::vector<double> cold_ms, warm_ms;
    for (const core::ResultRecord& r : result.records) {
      if (!r.ok) continue;
      (r.connection_reused ? warm_ms : cold_ms).push_back(r.response_ms);
    }
    o["cold_queries"] = core::Json(static_cast<double>(cold_ms.size()));
    o["warm_queries"] = core::Json(static_cast<double>(warm_ms.size()));
    if (!cold_ms.empty()) o["cold_median_ms"] = core::Json(stats::median(std::move(cold_ms)));
    if (!warm_ms.empty()) o["warm_median_ms"] = core::Json(stats::median(std::move(warm_ms)));
  } else if (suite == "monitor") {
    // bench_monitor's scenario: a watchlist across the four tiers, a month
    // of daily epochs, one scripted mid-span outage.
    monitor::MonitorSpec spec;
    spec.base.resolvers = {
        "dns.google", "security.cloudflare-dns.com", "dns.quad9.net", "ordns.he.net",
        "freedns.controld.com", "doh.ffmuc.net", "kronos.plan9-dns.com",
    };
    spec.base.vantage_ids = {"ec2-ohio"};
    spec.base.rounds = rounds;
    spec.base.seed = seed;
    spec.epochs = 30;
    spec.outages.push_back(monitor::OutageScript{"kronos.plan9-dns.com", 12, 15});

    const int workers = threads <= 0 ? 1 : threads;
    double best_wall_ms = 0.0;
    monitor::MonitorResult mon;
    {
      const auto scope = profiler.scope("monitor");
      for (int run = 0; run < repeat; ++run) {
        const auto start = WallClock::now();
        auto result = monitor::run_monitor(spec, workers);
        const double wall_ms = elapsed_ms(start);
        if (!result) {
          std::fprintf(stderr, "monitor bench failed: %s\n", result.error().c_str());
          return 1;
        }
        mon = std::move(result).value();
        if (run == 0 || wall_ms < best_wall_ms) best_wall_ms = wall_ms;
      }
    }

    // Attribution cost rides along in the ledger: diagnose re-runs the
    // event-adjacent epochs and scores every event. diagnose_wall_ms is a
    // wall-only lane (outside perfgate's deterministic sim-field list).
    double best_diagnose_ms = 0.0;
    std::size_t diagnoses = 0;
    {
      const auto scope = profiler.scope("diagnose");
      for (int run = 0; run < repeat; ++run) {
        const auto start = WallClock::now();
        auto report = monitor::diagnose_events(mon, workers);
        const double wall_ms = elapsed_ms(start);
        if (!report) {
          std::fprintf(stderr, "diagnose bench failed: %s\n", report.error().c_str());
          return 1;
        }
        diagnoses = report.value().diagnoses.size();
        if (run == 0 || wall_ms < best_diagnose_ms) best_diagnose_ms = wall_ms;
      }
    }

    o["bench"] = core::Json(std::string("monitor"));
    o["header"] = make_header("monitor", seed, threads, spec.base.vantage_ids.size(), rounds);
    o["resolvers"] = core::Json(static_cast<double>(spec.base.resolvers.size()));
    o["epochs"] = core::Json(static_cast<double>(spec.epochs));
    o["rounds"] = core::Json(static_cast<double>(rounds));
    o["seed"] = core::Json(static_cast<double>(seed));
    o["repeat"] = core::Json(static_cast<double>(repeat));
    o["series_points"] = core::Json(static_cast<double>(mon.series.size()));
    o["slo_samples"] = core::Json(static_cast<double>(mon.slos.size()));
    o["events"] = core::Json(static_cast<double>(mon.events.size()));
    o["diagnoses"] = core::Json(static_cast<double>(diagnoses));
    o["wall_ms"] = core::Json(best_wall_ms);
    o["diagnose_wall_ms"] = core::Json(best_diagnose_ms);
  } else if (suite == "micro") {
    // Uncontended ring throughput: the per-item handoff cost the pipeline
    // pays, measured without thread scheduling noise.
    constexpr std::size_t kRingOps = 1u << 20;
    double ring_wall_ms = 0.0;
    std::uint64_t checksum = 0;
    {
      const auto scope = profiler.scope("ring");
      for (int run = 0; run < repeat; ++run) {
        util::SpscRing<std::uint64_t> ring(1024);
        const auto start = WallClock::now();
        std::uint64_t sum = 0;
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < kRingOps; ++i) {
          ring.push(i);
          if (ring.try_pop(v)) sum += v;
        }
        const double wall_ms = elapsed_ms(start);
        checksum = sum;
        if (run == 0 || wall_ms < ring_wall_ms) ring_wall_ms = wall_ms;
      }
    }

    // Telemetry-on variant of the same loop: a RingStatSink attached with the
    // real monotonic clock, exactly what --progress-file arms on the pipeline
    // rings. The delta against the plain lane is the per-handoff telemetry
    // cost (telemetry_overhead_pct; BM_RuntimeTelemetryOverhead is the
    // google-benchmark twin). Wall-time only — the checksum must match the
    // plain lane, re-asserting that telemetry never changes the data path.
    double ring_telemetry_wall_ms = 0.0;
    std::uint64_t telemetry_checksum = 0;
    std::uint64_t telemetry_pushes = 0;
    {
      const auto scope = profiler.scope("ring-telemetry");
      for (int run = 0; run < repeat; ++run) {
        util::SpscRing<std::uint64_t> ring(1024);
        util::RingStatSink sink;
        sink.now_ns = &obs::runtime_now_ns;
        ring.attach_stats(&sink);
        const auto start = WallClock::now();
        std::uint64_t sum = 0;
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < kRingOps; ++i) {
          ring.push(i);
          if (ring.try_pop(v)) sum += v;
        }
        const double wall_ms = elapsed_ms(start);
        telemetry_checksum = sum;
        telemetry_pushes = sink.pushes.load();
        if (run == 0 || wall_ms < ring_telemetry_wall_ms) ring_telemetry_wall_ms = wall_ms;
      }
    }

    // Minimal pipeline campaign: one vantage, a handful of resolvers — the
    // fixed per-campaign overhead (world build, expansion, collection).
    core::MeasurementSpec spec;
    spec.resolvers = {"dns.google", "ordns.he.net", "dns.quad9.net"};
    spec.vantage_ids = {"ec2-ohio"};
    spec.rounds = rounds > 0 ? std::min(rounds, 2) : 2;
    spec.seed = seed;
    double campaign_wall_ms = 0.0;
    core::CampaignResult result;
    {
      const auto scope = profiler.scope("campaign");
      for (int run = 0; run < repeat; ++run) {
        const auto start = WallClock::now();
        result = core::run_parallel_campaign(spec, threads <= 0 ? 1 : threads);
        const double wall_ms = elapsed_ms(start);
        if (run == 0 || wall_ms < campaign_wall_ms) campaign_wall_ms = wall_ms;
      }
    }

    // Static-analyzer lane: the full-tree lint cost CI pays on every push
    // (pass 1 index + pass 2 call graph + pass 3 rules). Roots are resolved
    // against the current directory like the ednsm_lint CLI; when the tree is
    // not there (bench run from an install dir) the lane reports zero files
    // and is skipped rather than failing the suite. Wall time only — lint
    // findings are the lint_tree ctest case's job, not the bench's.
    double lint_wall_ms = 0.0;
    std::size_t lint_files = 0;
    {
      const auto scope = profiler.scope("lint");
      std::vector<lint::SourceFile> tree;
      for (const char* root : {"src", "tools", "bench"}) {
        for (lint::SourceFile& f : lint::load_tree({root})) tree.push_back(std::move(f));
      }
      lint_files = tree.size();
      for (int run = 0; !tree.empty() && run < repeat; ++run) {
        const auto start = WallClock::now();
        const std::vector<lint::Diagnostic> diags = lint::run_lint(tree);
        const double wall_ms = elapsed_ms(start);
        if (run == 0 && !diags.empty()) {
          std::fprintf(stderr, "note: lint lane saw %zu findings (not a bench failure)\n",
                       diags.size());
        }
        if (run == 0 || wall_ms < lint_wall_ms) lint_wall_ms = wall_ms;
      }
    }

    o["bench"] = core::Json(std::string("micro"));
    o["header"] = make_header("micro", seed, threads, spec.vantage_ids.size(), spec.rounds);
    o["repeat"] = core::Json(static_cast<double>(repeat));
    o["lint_files"] = core::Json(static_cast<double>(lint_files));
    o["lint_wall_ms"] = core::Json(lint_wall_ms);
    o["ring_ops"] = core::Json(static_cast<double>(kRingOps));
    o["ring_checksum"] = core::Json(static_cast<double>(checksum));
    o["ring_ops_per_sec"] = core::Json(
        ring_wall_ms > 0.0 ? static_cast<double>(kRingOps) / (ring_wall_ms / 1000.0) : 0.0);
    // Wall-clock telemetry lane: outside the perf gate's deterministic field
    // set (like lint_wall_ms), tracked for trend only.
    o["ring_telemetry_ops_per_sec"] = core::Json(
        ring_telemetry_wall_ms > 0.0
            ? static_cast<double>(kRingOps) / (ring_telemetry_wall_ms / 1000.0)
            : 0.0);
    o["telemetry_overhead_pct"] = core::Json(
        ring_wall_ms > 0.0
            ? (ring_telemetry_wall_ms - ring_wall_ms) / ring_wall_ms * 100.0
            : 0.0);
    o["telemetry_checksum_identical"] =
        core::Json(telemetry_checksum == checksum && telemetry_pushes == kRingOps);
    o["records"] = core::Json(static_cast<double>(result.records.size()));
    o["pings"] = core::Json(static_cast<double>(result.pings.size()));
    o["error_rate"] = core::Json(result.availability.overall().error_rate());
    o["wall_ms"] = core::Json(campaign_wall_ms);
  } else {
    std::fprintf(stderr, "error: unknown suite \"%s\" (fig2, monitor, micro)\n", suite.c_str());
    return 1;
  }

  const core::Json summary(std::move(o));

  if (const auto it = options.find("out"); it != options.end()) {
    std::ofstream out(it->second);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", it->second.c_str());
      return 3;
    }
    out << summary.dump(2) << '\n';
  }
  if (json_to_stdout || options.find("out") == options.end()) {
    std::printf("%s\n", summary.dump(2).c_str());
  } else {
    std::fprintf(stderr, "%s: wall %.1f ms -> %s\n", suite.c_str(),
                 summary.at("wall_ms").as_number(), options.at("out").c_str());
  }
  if (profile) std::fprintf(stderr, "%s", profiler.report().c_str());
  return 0;
}
