// ednsm-bench: timed paper-campaign runs with a machine-readable summary, so
// the BENCH_*.json trajectory can be tracked across releases.
//
// Usage:
//   ednsm_bench [--vantages ids] [--rounds N] [--seed S] [--threads N]
//               [--repeat K] [--json] [--out BENCH_campaign.json]
//               [--trace-overhead 1] [--profile 1]
//
// --trace-overhead re-runs the campaign with tracing enabled and adds
// trace_on_wall_ms / trace_overhead_pct / trace_identical to the summary
// (trace_identical asserts the simulated output is byte-identical either
// way). --profile prints a wall-clock stage breakdown to stderr.
//
// Defaults reproduce the Fig. 2 workload: the full Appendix A.2 registry from
// the four global vantages, 30 rounds. --threads 0 (default) is the legacy
// single-world engine; N >= 1 is the sharded engine with N workers. --repeat
// reruns the campaign K times and reports the fastest wall time (steadier on
// loaded machines). --json (or --out) emits the summary as JSON; --out also
// writes it to the given path.
//
// Exit codes: 0 ok, 1 bad usage, 3 I/O error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/json.h"
#include "core/parallel_campaign.h"
#include "obs/profile.h"
#include "resolver/registry.h"
#include "stats/quantile.h"
#include "util/strings.h"

using namespace ednsm;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  for (std::string_view part : util::split(csv, ',')) {
    if (!part.empty()) out.emplace_back(part);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  bool json_to_stdout = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_to_stdout = true;
      continue;
    }
    if (!arg.starts_with("--") || i + 1 >= argc) {
      std::fprintf(stderr, "usage: ednsm_bench [--vantages ids] [--rounds N] [--seed S] "
                           "[--threads N] [--repeat K] [--json] [--out file]\n");
      return 1;
    }
    options[std::string(arg.substr(2))] = argv[++i];
  }

  std::vector<std::string> vantages = {"home-chicago-1", "ec2-ohio", "ec2-frankfurt",
                                       "ec2-seoul"};
  if (const auto it = options.find("vantages"); it != options.end()) {
    vantages = split_list(it->second);
  }
  int rounds = 30;
  if (const auto it = options.find("rounds"); it != options.end()) {
    rounds = std::atoi(it->second.c_str());
  }
  std::uint64_t seed = 20250704;
  if (const auto it = options.find("seed"); it != options.end()) {
    seed = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  int threads = 0;
  if (const auto it = options.find("threads"); it != options.end()) {
    threads = std::atoi(it->second.c_str());
  }
  int repeat = 1;
  if (const auto it = options.find("repeat"); it != options.end()) {
    repeat = std::max(1, std::atoi(it->second.c_str()));
  }

  const bool trace_overhead = options.contains("trace-overhead");
  const bool profile = options.contains("profile");

  core::MeasurementSpec spec;
  obs::WallProfiler profiler;
  {
    const auto scope = profiler.scope("build-spec");
    for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
    spec.vantage_ids = vantages;
    spec.rounds = rounds;
    spec.seed = seed;
  }
  if (auto valid = spec.validate(); !valid) {
    std::fprintf(stderr, "invalid bench spec: %s\n", valid.error().c_str());
    return 1;
  }

  // One timed campaign run; `with_trace` enables tracing for the overhead
  // comparison (the trace itself is discarded — only the cost matters here).
  const auto timed_run = [&](bool with_trace, double& wall_ms) {
    core::CampaignResult r;
    // ednsm-lint: allow(determinism-wallclock) — harness-side wall timing of
    // the simulation; never feeds simulated results.
    const auto start = std::chrono::steady_clock::now();
    if (threads <= 0) {
      core::SimWorld world(seed);
      if (with_trace) world.tracer().enable();
      r = core::CampaignRunner(world, spec).run();
    } else {
      core::CampaignObsOptions obs_options;
      obs_options.trace = with_trace;
      core::CampaignObsData obs_data;
      r = core::run_parallel_campaign(spec, threads, obs_options, &obs_data);
    }
    wall_ms =
        // ednsm-lint: allow(determinism-wallclock) — harness wall timing
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    return r;
  };

  core::CampaignResult result;
  double best_wall_ms = 0.0;
  {
    const auto scope = profiler.scope("campaign");
    for (int run = 0; run < repeat; ++run) {
      double wall_ms = 0.0;
      result = timed_run(false, wall_ms);
      if (run == 0 || wall_ms < best_wall_ms) best_wall_ms = wall_ms;
    }
  }

  double best_traced_wall_ms = 0.0;
  bool trace_identical = true;
  if (trace_overhead) {
    const auto scope = profiler.scope("campaign-traced");
    core::CampaignResult traced;
    for (int run = 0; run < repeat; ++run) {
      double wall_ms = 0.0;
      traced = timed_run(true, wall_ms);
      if (run == 0 || wall_ms < best_traced_wall_ms) best_traced_wall_ms = wall_ms;
    }
    trace_identical = traced.to_json().dump(0) == result.to_json().dump(0);
  }

  const double records_per_sec =
      best_wall_ms > 0.0 ? static_cast<double>(result.records.size()) / (best_wall_ms / 1000.0)
                         : 0.0;

  core::JsonObject o;
  o["bench"] = core::Json(std::string("paper_campaign"));
  // Attribution header: the fields that pin this row of a perf trajectory to
  // an exact workload. seed + threads determine the run completely;
  // effective_threads is the worker count after the engine's clamp to
  // [1, #shards], so rows from over-provisioned runs compare honestly.
  {
    core::JsonObject header;
    header["bench"] = core::Json(std::string("paper_campaign"));
    header["schema_version"] = core::Json(2.0);
    header["seed"] = core::Json(static_cast<double>(seed));
    header["threads"] = core::Json(static_cast<double>(threads));
    const std::size_t shards = vantages.size();
    const std::size_t effective =
        threads <= 0 ? 1 : std::min(static_cast<std::size_t>(threads), shards);
    header["effective_threads"] = core::Json(static_cast<double>(effective));
    o["header"] = core::Json(std::move(header));
  }
  o["engine"] = core::Json(std::string(threads > 0 ? "sharded" : "legacy"));
  o["threads"] = core::Json(static_cast<double>(threads));
  o["resolvers"] = core::Json(static_cast<double>(spec.resolvers.size()));
  o["vantages"] = core::Json(static_cast<double>(vantages.size()));
  o["rounds"] = core::Json(static_cast<double>(rounds));
  o["seed"] = core::Json(static_cast<double>(seed));
  o["repeat"] = core::Json(static_cast<double>(repeat));
  o["records"] = core::Json(static_cast<double>(result.records.size()));
  o["pings"] = core::Json(static_cast<double>(result.pings.size()));
  o["error_rate"] = core::Json(result.availability.overall().error_rate());
  o["wall_ms"] = core::Json(best_wall_ms);
  o["records_per_sec"] = core::Json(records_per_sec);
  if (trace_overhead) {
    o["trace_on_wall_ms"] = core::Json(best_traced_wall_ms);
    o["trace_overhead_pct"] = core::Json(
        best_wall_ms > 0.0 ? 100.0 * (best_traced_wall_ms - best_wall_ms) / best_wall_ms : 0.0);
    o["trace_identical"] = core::Json(trace_identical);
  }

  // Cold/warm medians of simulated response time, keyed off the per-record
  // reuse flag the session layer stamps. Either population can be empty
  // (e.g. reuse=None campaigns have no warm records); its median is omitted.
  std::vector<double> cold_ms, warm_ms;
  for (const core::ResultRecord& r : result.records) {
    if (!r.ok) continue;
    (r.connection_reused ? warm_ms : cold_ms).push_back(r.response_ms);
  }
  o["cold_queries"] = core::Json(static_cast<double>(cold_ms.size()));
  o["warm_queries"] = core::Json(static_cast<double>(warm_ms.size()));
  if (!cold_ms.empty()) o["cold_median_ms"] = core::Json(stats::median(std::move(cold_ms)));
  if (!warm_ms.empty()) o["warm_median_ms"] = core::Json(stats::median(std::move(warm_ms)));
  const core::Json summary(std::move(o));

  if (const auto it = options.find("out"); it != options.end()) {
    std::ofstream out(it->second);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", it->second.c_str());
      return 3;
    }
    out << summary.dump(2) << '\n';
  }
  if (json_to_stdout || options.find("out") == options.end()) {
    std::printf("%s\n", summary.dump(2).c_str());
  } else {
    std::fprintf(stderr, "wall %.1f ms (%0.f records/s) -> %s\n", best_wall_ms, records_per_sec,
                 options.at("out").c_str());
  }
  if (profile) std::fprintf(stderr, "%s", profiler.report().c_str());
  return 0;
}
