// ednsm_lint CLI: run the project-invariant static analyzer over source
// roots (default: src tools bench, resolved against the current directory)
// and exit nonzero when any unsuppressed violation remains.
//
//   ednsm_lint                   # lint src/, tools/, bench/ under $PWD
//   ednsm_lint path/to/src ...   # explicit roots (files or directories)
//   ednsm_lint --list-rules      # print the rule table and exit
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int usage() {
  std::cerr << "usage: ednsm_lint [--list-rules] [root...]\n"
               "Roots may be directories (scanned recursively for .h/.hpp/.cc/.cpp)\n"
               "or single files; default roots are src, tools, and bench.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const ednsm::lint::RuleInfo& r : ednsm::lint::rules()) {
        std::cout << r.id << ": " << r.summary << "\n";
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return usage();
    }
    if (argv[i][0] == '-') {
      std::cerr << "ednsm_lint: unknown option '" << argv[i] << "'\n";
      return usage();
    }
    roots.emplace_back(argv[i]);
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  std::vector<ednsm::lint::SourceFile> files;
  for (const std::string& root : roots) {
    if (std::filesystem::is_regular_file(root)) {
      std::ifstream in(root, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back({root, std::move(buf).str()});
    } else if (std::filesystem::is_directory(root)) {
      for (ednsm::lint::SourceFile& f : ednsm::lint::load_tree({root})) {
        files.push_back(std::move(f));
      }
    } else {
      std::cerr << "ednsm_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  if (files.empty()) {
    std::cerr << "ednsm_lint: no source files found under the given roots\n";
    return 2;
  }

  const std::vector<ednsm::lint::Diagnostic> diags = ednsm::lint::run_lint(files);
  for (const ednsm::lint::Diagnostic& d : diags) {
    std::cout << ednsm::lint::format(d) << "\n";
  }
  if (!diags.empty()) {
    std::cout << "ednsm_lint: " << diags.size() << " violation" << (diags.size() == 1 ? "" : "s")
              << " in " << files.size() << " files\n";
    return 1;
  }
  std::cout << "ednsm_lint: clean (" << files.size() << " files)\n";
  return 0;
}
