// ednsm_lint CLI: run the project-invariant static analyzer over source
// roots (default: src tools bench, resolved against the current directory)
// and exit nonzero when any unsuppressed, non-baselined violation remains.
//
//   ednsm_lint                          # lint src/, tools/, bench/ under $PWD
//   ednsm_lint path/to/src ...          # explicit roots (files or directories)
//   ednsm_lint --list-rules             # print the rule table and exit
//   ednsm_lint --layers FILE            # module DAG config (default:
//                                       #   tools/lint/layers.conf if present)
//   ednsm_lint --baseline FILE          # subtract accepted findings (default:
//                                       #   tools/lint/baseline.json if present)
//   ednsm_lint --no-layers|--no-baseline  # disable the defaults
//   ednsm_lint --json                   # machine-readable report on stdout
//   ednsm_lint --json-out FILE          # write the JSON report to FILE too
//   ednsm_lint --write-baseline FILE    # emit current findings as a baseline
//                                       #   skeleton (reasons stubbed) and exit
//
// Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage/config.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/lint.h"

namespace {

int usage() {
  std::cerr << "usage: ednsm_lint [--list-rules] [--json] [--json-out FILE]\n"
               "                  [--layers FILE | --no-layers]\n"
               "                  [--baseline FILE | --no-baseline]\n"
               "                  [--write-baseline FILE] [root...]\n"
               "Roots may be directories (scanned recursively for .h/.hpp/.cc/.cpp)\n"
               "or single files; default roots are src, tools, and bench.\n";
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = std::move(buf).str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string layers_path;
  std::string baseline_path;
  std::string json_out_path;
  std::string write_baseline_path;
  bool json_stdout = false;
  bool no_layers = false;
  bool no_baseline = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "ednsm_lint: option '" << argv[i] << "' needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const ednsm::lint::RuleInfo& r : ednsm::lint::rules()) {
        std::cout << r.id << ": " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") return usage();
    if (arg == "--json") {
      json_stdout = true;
      continue;
    }
    if (arg == "--no-layers") {
      no_layers = true;
      continue;
    }
    if (arg == "--no-baseline") {
      no_baseline = true;
      continue;
    }
    if (arg == "--layers" || arg == "--baseline" || arg == "--json-out" ||
        arg == "--write-baseline") {
      const char* value = need_value(i);
      if (value == nullptr) return usage();
      if (arg == "--layers") layers_path = value;
      if (arg == "--baseline") baseline_path = value;
      if (arg == "--json-out") json_out_path = value;
      if (arg == "--write-baseline") write_baseline_path = value;
      continue;
    }
    if (arg[0] == '-') {
      std::cerr << "ednsm_lint: unknown option '" << arg << "'\n";
      return usage();
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};
  // Committed defaults, picked up when running from the repo root.
  if (layers_path.empty() && !no_layers &&
      std::filesystem::is_regular_file("tools/lint/layers.conf")) {
    layers_path = "tools/lint/layers.conf";
  }
  if (baseline_path.empty() && !no_baseline &&
      std::filesystem::is_regular_file("tools/lint/baseline.json")) {
    baseline_path = "tools/lint/baseline.json";
  }

  std::vector<ednsm::lint::SourceFile> files;
  for (const std::string& root : roots) {
    if (std::filesystem::is_regular_file(root)) {
      std::string content;
      if (!read_file(root, &content)) {
        std::cerr << "ednsm_lint: cannot read " << root << "\n";
        return 2;
      }
      files.push_back({root, std::move(content)});
    } else if (std::filesystem::is_directory(root)) {
      for (ednsm::lint::SourceFile& f : ednsm::lint::load_tree({root})) {
        files.push_back(std::move(f));
      }
    } else {
      std::cerr << "ednsm_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  if (files.empty()) {
    std::cerr << "ednsm_lint: no source files found under the given roots\n";
    return 2;
  }

  ednsm::lint::Options options;
  if (!layers_path.empty() && !read_file(layers_path, &options.layers_text)) {
    std::cerr << "ednsm_lint: cannot read layers config " << layers_path << "\n";
    return 2;
  }

  std::vector<ednsm::lint::Diagnostic> diags = ednsm::lint::run_lint(files, options);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << ednsm::lint::baseline_to_json(diags);
    if (!out) {
      std::cerr << "ednsm_lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    std::cout << "ednsm_lint: wrote " << diags.size() << " finding"
              << (diags.size() == 1 ? "" : "s") << " to " << write_baseline_path
              << " (fill in the reasons before committing)\n";
    return 0;
  }

  std::vector<ednsm::lint::BaselineEntry> stale;
  std::size_t baselined = 0;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::cerr << "ednsm_lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::vector<ednsm::lint::BaselineEntry> entries;
    std::string error;
    if (!ednsm::lint::parse_baseline(text, &entries, &error)) {
      std::cerr << "ednsm_lint: " << baseline_path << ": " << error << "\n";
      return 2;
    }
    ednsm::lint::BaselineResult result =
        ednsm::lint::apply_baseline(std::move(diags), entries);
    diags = std::move(result.remaining);
    stale = std::move(result.stale);
    baselined = result.suppressed;
  }

  const std::string report = ednsm::lint::format_json(diags);
  if (!json_out_path.empty()) {
    std::ofstream out(json_out_path, std::ios::binary);
    out << report;
    if (!out) {
      std::cerr << "ednsm_lint: cannot write " << json_out_path << "\n";
      return 2;
    }
  }
  if (json_stdout) {
    std::cout << report;
  } else {
    for (const ednsm::lint::Diagnostic& d : diags) {
      std::cout << ednsm::lint::format(d) << "\n";
    }
  }
  for (const ednsm::lint::BaselineEntry& e : stale) {
    std::cerr << "ednsm_lint: stale baseline entry (matches no finding): rule=" << e.rule
              << " path=" << e.path << (e.key.empty() ? "" : " key=" + e.key)
              << " — remove it from " << baseline_path << "\n";
  }
  if (!diags.empty() || !stale.empty()) {
    if (!json_stdout) {
      std::cout << "ednsm_lint: " << diags.size() << " violation"
                << (diags.size() == 1 ? "" : "s") << " in " << files.size() << " files";
      if (baselined > 0) std::cout << " (" << baselined << " baselined)";
      if (!stale.empty()) std::cout << ", " << stale.size() << " stale baseline entries";
      std::cout << "\n";
    }
    return 1;
  }
  if (!json_stdout) {
    std::cout << "ednsm_lint: clean (" << files.size() << " files";
    if (baselined > 0) std::cout << ", " << baselined << " baselined findings";
    std::cout << ")\n";
  }
  return 0;
}
