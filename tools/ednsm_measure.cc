// ednsm-measure: the command-line measurement tool (the shape of the paper's
// released artifact — "clients provide a list of DoH resolvers they wish to
// perform measurements with ... the tool writes the results to a JSON file").
//
// Usage:
//   ednsm_measure --spec spec.json [--out results.json]
//   ednsm_measure --resolvers dns.google,ordns.he.net --vantages ec2-ohio
//                 [--rounds 10] [--protocol DoH|DoT|Do53|DoQ|ODoH] [--seed 1]
//                 [--reuse none|keepalive|ticket-resumption]
//                 [--domains google.com,amazon.com] [--out results.json]
//                 [--threads N]
//   ednsm_measure --all-resolvers --vantages ec2-ohio,ec2-seoul
//   ednsm_measure ... --trace trace.json [--trace-filter transport]
//                 [--trace-capacity 65536] [--metrics metrics.jsonl]
//   ednsm_measure ... --shard k/N --out shard_k.json
//   ednsm_measure ... --progress-file heartbeat.json --manifest manifest.json
//
// --threads N selects the shard-per-vantage parallel engine with N workers
// (see core/parallel_campaign.h); its JSON output is byte-identical for every
// N, including --threads 1. Omitting the flag keeps the legacy single-world
// engine, whose record stream matches earlier releases exactly.
//
// --shard k/N runs only slice k of N of the campaign's shard plan list (the
// multi-process split; slices are contiguous and balanced) and writes a
// self-describing shard file instead of a results file. Shard files are
// written crash-safely (temp file + fsync + atomic rename); a partial write
// exits non-zero and leaves no file at the output path. N shard files merged
// by ednsm_merge reproduce the unsharded results byte-for-byte. With --trace
// or --metrics the shard file embeds each shard's exact trace/metrics data
// (the flags' path arguments name per-slice artifacts, also written).
//
// --trace writes a Chrome trace-event JSON (chrome://tracing / Perfetto)
// timestamped in simulated time; --trace-filter keeps one subsystem ("cat").
// --metrics writes a JSONL metrics dump (counters + distributions). Neither
// perturbs the simulation: the results file is byte-identical with or
// without them.
//
// --progress-file writes a crash-safe wall-clock heartbeat JSON (atomic
// rename; poll it or point ednsm_watch at it) updated as the pipeline runs;
// --manifest writes the end-of-run provenance record ednsm_merge
// cross-checks. Both live in the runtime telemetry clock domain (see
// DESIGN.md): results/trace/metrics are byte-identical with them on or off.
//
// Exit codes: 0 ok, 1 bad usage, 2 invalid spec, 3 I/O error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/campaign.h"
#include "core/parallel_campaign.h"
#include "core/shard_io.h"
#include "obs/runtime.h"
#include "report/figures.h"
#include "resolver/registry.h"
#include "util/fs.h"
#include "util/strings.h"

using namespace ednsm;

namespace {

struct Args {
  std::map<std::string, std::string> options;
  bool all_resolvers = false;

  [[nodiscard]] const std::string* get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? nullptr : &it->second;
  }
};

Result<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--all-resolvers") {
      args.all_resolvers = true;
      continue;
    }
    if (!arg.starts_with("--")) return Err{std::string("unexpected argument: ") + argv[i]};
    if (i + 1 >= argc) return Err{std::string(arg) + " requires a value"};
    args.options[std::string(arg.substr(2))] = argv[++i];
  }
  return args;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  for (std::string_view part : util::split(csv, ',')) {
    if (!part.empty()) out.emplace_back(part);
  }
  return out;
}

Result<core::MeasurementSpec> build_spec(const Args& args) {
  if (const std::string* spec_path = args.get("spec")) {
    std::ifstream in(*spec_path);
    if (!in) return Err{std::string("cannot open spec file: ") + *spec_path};
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto json = core::Json::parse(buffer.str());
    if (!json) return Err{"spec file is not valid JSON: " + json.error()};
    return core::MeasurementSpec::from_json(json.value());
  }

  core::MeasurementSpec spec;
  if (args.all_resolvers) {
    for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
  } else if (const std::string* resolvers = args.get("resolvers")) {
    spec.resolvers = split_list(*resolvers);
  }
  if (const std::string* vantages = args.get("vantages")) {
    spec.vantage_ids = split_list(*vantages);
  }
  if (const std::string* domains = args.get("domains")) {
    spec.domains = split_list(*domains);
  }
  if (const std::string* rounds = args.get("rounds")) {
    spec.rounds = std::atoi(rounds->c_str());
  }
  if (const std::string* seed = args.get("seed")) {
    spec.seed = std::strtoull(seed->c_str(), nullptr, 10);
  }
  if (const std::string* protocol = args.get("protocol")) {
    if (auto p = client::protocol_from_string(*protocol); p.has_value()) {
      spec.protocol = *p;
    } else {
      return Err{std::string("unknown protocol: ") + *protocol};
    }
  }
  if (const std::string* reuse = args.get("reuse")) {
    if (auto p = transport::reuse_policy_from_string(*reuse); p.has_value()) {
      spec.query_options.reuse = *p;
    } else {
      return Err{std::string("unknown reuse policy: ") + *reuse};
    }
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    return 1;
  }
  auto spec = build_spec(args.value());
  if (!spec) {
    std::fprintf(stderr, "error: %s\n", spec.error().c_str());
    return 2;
  }
  if (auto valid = spec.value().validate(); !valid) {
    std::fprintf(stderr, "invalid spec: %s\n", valid.error().c_str());
    return 2;
  }

  int threads = 0;  // 0 = legacy single-world engine
  if (const std::string* t = args.value().get("threads")) {
    threads = std::atoi(t->c_str());
    if (threads < 1) {
      std::fprintf(stderr, "error: --threads requires a positive integer (got %s)\n", t->c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "measuring %zu resolvers x %zu vantages x %d rounds over %s%s...\n",
               spec.value().resolvers.size(), spec.value().vantage_ids.size(),
               spec.value().rounds,
               std::string(client::to_string(spec.value().protocol)).c_str(),
               threads > 0 ? (" (sharded, " + std::to_string(threads) + " threads)").c_str() : "");

  const std::string* trace_path = args.value().get("trace");
  const std::string* metrics_path = args.value().get("metrics");
  core::CampaignObsOptions obs_options;
  obs_options.trace = trace_path != nullptr;
  obs_options.metrics = metrics_path != nullptr;
  if (const std::string* cap = args.value().get("trace-capacity")) {
    const long long parsed = std::atoll(cap->c_str());
    if (parsed < 1) {
      std::fprintf(stderr, "error: --trace-capacity requires a positive integer (got %s)\n",
                   cap->c_str());
      return 1;
    }
    obs_options.trace_capacity = static_cast<std::size_t>(parsed);
  }
  const std::string* filter = args.value().get("trace-filter");
  core::CampaignObsData obs_data;
  const std::string* out_path_opt = args.value().get("out");

  // Runtime telemetry (wall-clock domain; never touches the deterministic
  // outputs). The hub collects whenever either artifact was requested.
  const std::string* progress_path = args.value().get("progress-file");
  const std::string* manifest_path = args.value().get("manifest");
  obs::RuntimeTelemetry telemetry;
  std::optional<obs::HeartbeatWriter> heartbeat;
  const bool telemetry_on = progress_path != nullptr || manifest_path != nullptr;
  if (telemetry_on) obs_options.runtime = &telemetry;
  if (progress_path != nullptr) {
    heartbeat.emplace(*progress_path, telemetry);
    obs_options.heartbeat = &*heartbeat;
  }

  auto file_size_bytes = [](const std::string& p) -> std::uint64_t {
    std::ifstream f(p, std::ios::binary | std::ios::ate);
    return f ? static_cast<std::uint64_t>(f.tellg()) : 0;
  };

  // Terminal telemetry flush: final heartbeat ("done"/"failed") plus the run
  // manifest. Returns false only when the manifest itself cannot be written.
  auto emit_final_telemetry = [&](const char* status, std::size_t total_shards,
                                  std::uint64_t pings) -> bool {
    if (!telemetry_on) return true;
    const bool ok = std::string_view(status) == "ok";
    if (heartbeat.has_value()) {
      if (auto w = heartbeat->write_final(ok ? "done" : "failed"); !w) {
        std::fprintf(stderr, "warning: progress file: %s\n", w.error().c_str());
      }
    }
    if (manifest_path == nullptr) return true;
    const obs::RuntimeHeartbeat snap = telemetry.snapshot_runtime(ok ? "done" : "failed");
    obs::RunManifest manifest;
    manifest.spec_fingerprint = snap.spec_fingerprint;
    manifest.seed = spec.value().seed;
    manifest.shard_k = snap.shard_k;
    manifest.shard_n = snap.shard_n;
    manifest.total_shards = total_shards;
    manifest.plans = static_cast<std::size_t>(snap.plans_total);
    manifest.threads = snap.threads;
    manifest.status = status;
    manifest.started_unix_ms = snap.started_unix_ms;
    manifest.finished_unix_ms = snap.updated_unix_ms;
    manifest.wall_ms = snap.elapsed_ms;
    manifest.records = snap.records;
    manifest.pings = pings;
    manifest.bytes_encoded = snap.bytes_encoded;
    manifest.stages = snap.stages;
    if (auto w = util::write_file_atomic(*manifest_path,
                                         manifest.manifest_json().dump(2) + "\n");
        !w) {
      std::fprintf(stderr, "error: manifest: %s\n", w.error().c_str());
      return false;
    }
    return true;
  };

  if (const std::string* shard = args.value().get("shard")) {
    auto slice = core::ShardSlice::parse(*shard);
    if (!slice) {
      std::fprintf(stderr, "error: --shard: %s\n", slice.error().c_str());
      return 1;
    }
    const std::vector<core::ShardPlan> plans = core::expand_spec(spec.value());
    const std::vector<core::ShardPlan> mine = core::slice_plans(plans, slice.value());

    if (telemetry_on) {
      telemetry.describe_run(core::spec_fingerprint(spec.value()), slice.value().k,
                             slice.value().n, threads > 0 ? threads : 1);
      telemetry.begin_run(mine.size());
      if (heartbeat.has_value()) heartbeat->write_update();  // initial "starting"
    }

    core::ShardFile file;
    file.spec = spec.value();
    file.slice = slice.value();
    file.total_shards = plans.size();
    file.has_trace = obs_options.trace;
    file.has_metrics = obs_options.metrics;
    file.outcomes.reserve(mine.size());
    core::run_pipeline(spec.value(), mine, threads > 0 ? threads : 1, obs_options,
                       [&](core::ShardOutcome&& outcome) {
                         file.outcomes.push_back(std::move(outcome));
                       });
    // Outcomes arrive in completion order; the file format wants index order
    // (which also makes the file itself byte-identical for any --threads).
    std::sort(file.outcomes.begin(), file.outcomes.end(),
              [](const core::ShardOutcome& a, const core::ShardOutcome& b) {
                return a.index < b.index;
              });

    std::uint64_t shard_pings = 0;
    if (telemetry_on) {
      std::uint64_t shard_records = 0;
      for (const core::ShardOutcome& outcome : file.outcomes) {
        shard_records += outcome.result.records.size();
        shard_pings += outcome.result.pings.size();
      }
      telemetry.note_records(shard_records);
    }

    const std::string path =
        out_path_opt != nullptr
            ? *out_path_opt
            : "shard-" + std::to_string(slice.value().k) + "-of-" +
                  std::to_string(slice.value().n) + ".json";
    if (auto written = file.write(path); !written) {
      std::fprintf(stderr, "error: %s\n", written.error().c_str());
      emit_final_telemetry("failed", plans.size(), shard_pings);
      return 3;
    }
    if (telemetry_on) telemetry.note_bytes_encoded(file_size_bytes(path));

    // Per-slice debugging artifacts; the canonical merged ones come from
    // ednsm_merge over the full shard set.
    if (trace_path != nullptr) {
      obs::MergedTrace view;
      for (const core::ShardOutcome& outcome : file.outcomes) {
        view.add_shard("vantage/" + outcome.vantage, outcome.trace);
      }
      std::ofstream trace_out(*trace_path);
      if (!trace_out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path->c_str());
        return 3;
      }
      view.write_chrome_json(trace_out, filter != nullptr ? *filter : std::string_view{});
    }
    if (metrics_path != nullptr) {
      obs::Metrics slice_metrics;
      for (const core::ShardOutcome& outcome : file.outcomes) {
        slice_metrics.merge(outcome.metrics);
      }
      std::ofstream metrics_out(*metrics_path);
      if (!metrics_out) {
        std::fprintf(stderr, "error: cannot write %s\n", metrics_path->c_str());
        return 3;
      }
      slice_metrics.write_jsonl(metrics_out);
    }

    if (!emit_final_telemetry("ok", plans.size(), shard_pings)) return 3;

    std::fprintf(stderr, "shard %zu/%zu: %zu of %zu campaign shards -> %s\n",
                 slice.value().k, slice.value().n, file.outcomes.size(), plans.size(),
                 path.c_str());
    return 0;
  }

  const std::size_t plan_count = spec.value().vantage_ids.size();
  if (telemetry_on) {
    telemetry.describe_run(core::spec_fingerprint(spec.value()), 0, 1,
                           threads > 0 ? threads : 1);
    telemetry.begin_run(plan_count);
    if (heartbeat.has_value()) heartbeat->write_update();  // initial "starting"
  }

  core::CampaignResult result;
  if (threads > 0) {
    result = core::run_parallel_campaign(spec.value(), threads, obs_options, &obs_data);
  } else {
    core::SimWorld world(spec.value().seed);
    if (obs_options.trace) world.tracer().enable(obs_options.trace_capacity);
    result = core::CampaignRunner(world, spec.value()).run();
    if (obs_options.trace) obs_data.trace.add_shard("world", world.tracer().drain());
    if (obs_options.metrics) {
      world.collect_metrics(obs_data.metrics);
      core::collect_result_metrics(result, obs_data.metrics);
    }
    // The legacy engine has no pipeline hooks; report the whole run as done
    // after the fact so its heartbeat/manifest still describe completion.
    if (telemetry_on) {
      for (std::size_t i = 0; i < plan_count; ++i) telemetry.note_plan_done(0);
      telemetry.note_sink_items(plan_count, 0);
    }
  }

  const std::string* out_path = args.value().get("out");
  const std::string path = out_path != nullptr ? *out_path : "results.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    emit_final_telemetry("failed", plan_count, result.pings.size());
    return 3;
  }
  result.write_json(out);
  out.flush();
  if (telemetry_on) {
    telemetry.note_records(result.records.size());
    telemetry.note_bytes_encoded(file_size_bytes(path));
  }

  if (trace_path != nullptr) {
    std::ofstream trace_out(*trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path->c_str());
      return 3;
    }
    obs_data.trace.write_chrome_json(trace_out, filter != nullptr ? *filter : std::string_view{});
    std::fprintf(stderr, "trace: %llu events (%llu dropped) across %zu shards -> %s\n",
                 static_cast<unsigned long long>(obs_data.trace.total_events()),
                 static_cast<unsigned long long>(obs_data.trace.total_dropped()),
                 obs_data.trace.shard_count(), trace_path->c_str());
  }
  if (metrics_path != nullptr) {
    std::ofstream metrics_out(*metrics_path);
    if (!metrics_out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path->c_str());
      return 3;
    }
    obs_data.metrics.write_jsonl(metrics_out);
    std::fprintf(stderr, "metrics -> %s\n", metrics_path->c_str());
  }

  if (!emit_final_telemetry("ok", plan_count, result.pings.size())) return 3;

  std::fprintf(stderr, "%zu query records, %zu pings; %.2f%% error rate -> %s\n",
               result.records.size(), result.pings.size(),
               result.availability.overall().error_rate() * 100.0, path.c_str());
  return 0;
}
