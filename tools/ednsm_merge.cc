// ednsm-merge: deterministic merge of `ednsm_measure --shard k/N` shard
// files back into the canonical campaign outputs.
//
// Usage:
//   ednsm_merge --out results.json shard0.json shard1.json ...
//               [--trace trace.json] [--trace-filter transport]
//               [--metrics metrics.jsonl]
//               [--manifests man0.json,man1.json,...]
//               [--manifest-out campaign_manifest.json] [--stats]
//
// --manifests takes the per-process run manifests written by
// `ednsm_measure --manifest` and cross-checks them against the shard files
// (same spec fingerprint, matching slice topology, every shard status "ok");
// --manifest-out folds them into one campaign-level manifest (totals,
// wall-time spread, straggler list); --stats prints a per-shard
// wall-time/throughput table flagging stragglers (>2x median wall time).
// Manifests are wall-clock telemetry: they gate and annotate the merge but
// never alter the merged results/trace/metrics bytes.
//
// The merge is byte-identical to an unsharded `ednsm_measure --threads N`
// run of the same spec, for ANY shard topology: both paths feed the same
// ShardCollector, which assembles records in canonical (round, vantage)
// order, traces in spec vantage order, and metrics in shard-index order.
//
// Inputs are validated strictly before anything is written: every file must
// parse and self-validate (magic, version, fingerprint, plan consistency —
// see core/shard_io.h), all files must describe the same campaign (equal
// spec fingerprints and slice count), and the slices must cover 0..N-1
// exactly once. --trace/--metrics require every shard file to embed the
// corresponding data (i.e. the workers ran with the same flags).
//
// Exit codes: 0 ok, 1 bad usage, 2 inconsistent/invalid shard set, 3 I/O.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel_campaign.h"
#include "core/shard_io.h"
#include "obs/runtime.h"
#include "util/fs.h"
#include "util/strings.h"

using namespace ednsm;

namespace {

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> inputs;
  bool stats = false;

  [[nodiscard]] const std::string* get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? nullptr : &it->second;
  }
};

Result<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      args.inputs.emplace_back(arg);
      continue;
    }
    if (arg == "--stats") {  // boolean flag: consumes no value
      args.stats = true;
      continue;
    }
    if (i + 1 >= argc) return Err{std::string(arg) + " requires a value"};
    args.options[std::string(arg.substr(2))] = argv[++i];
  }
  if (args.inputs.empty()) {
    return Err{std::string("usage: ednsm_merge --out results.json shard0.json shard1.json ...")};
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    return 1;
  }

  std::vector<core::ShardFile> shards;
  shards.reserve(args.value().inputs.size());
  for (const std::string& path : args.value().inputs) {
    auto loaded = core::ShardFile::load(path);
    if (!loaded) {
      std::fprintf(stderr, "error: %s\n", loaded.error().c_str());
      return 2;
    }
    shards.push_back(std::move(loaded).value());
  }

  const core::ShardFile& first = shards.front();
  const std::uint64_t fingerprint = core::spec_fingerprint(first.spec);
  if (shards.size() != first.slice.n) {
    std::fprintf(stderr, "error: spec splits into %zu shard files, got %zu\n", first.slice.n,
                 shards.size());
    return 2;
  }
  std::vector<bool> slice_seen(first.slice.n, false);
  for (const core::ShardFile& shard : shards) {
    if (core::spec_fingerprint(shard.spec) != fingerprint) {
      std::fprintf(stderr, "error: shard files describe different campaigns "
                           "(spec fingerprints differ)\n");
      return 2;
    }
    if (shard.slice.n != first.slice.n) {
      std::fprintf(stderr, "error: mixed shard topologies (%zu-way and %zu-way)\n",
                   first.slice.n, shard.slice.n);
      return 2;
    }
    if (shard.has_trace != first.has_trace || shard.has_metrics != first.has_metrics) {
      std::fprintf(stderr, "error: shard files disagree on embedded trace/metrics\n");
      return 2;
    }
    if (slice_seen[shard.slice.k]) {
      std::fprintf(stderr, "error: slice %zu/%zu appears more than once\n", shard.slice.k,
                   shard.slice.n);
      return 2;
    }
    slice_seen[shard.slice.k] = true;
  }

  const std::string* trace_path = args.value().get("trace");
  const std::string* metrics_path = args.value().get("metrics");
  if (trace_path != nullptr && !first.has_trace) {
    std::fprintf(stderr, "error: --trace requires shards measured with --trace\n");
    return 2;
  }
  if (metrics_path != nullptr && !first.has_metrics) {
    std::fprintf(stderr, "error: --metrics requires shards measured with --metrics\n");
    return 2;
  }

  // Run-manifest cross-check: telemetry-side provenance must agree with the
  // data-side shard files before we merge anything.
  const std::string* manifests_csv = args.value().get("manifests");
  const std::string* manifest_out = args.value().get("manifest-out");
  if ((manifest_out != nullptr || args.value().stats) && manifests_csv == nullptr) {
    std::fprintf(stderr, "error: --manifest-out/--stats require --manifests\n");
    return 1;
  }
  std::vector<obs::RunManifest> manifests;
  if (manifests_csv != nullptr) {
    for (std::string_view part : util::split(*manifests_csv, ',')) {
      if (part.empty()) continue;
      auto loaded = obs::RunManifest::manifest_load(std::string(part));
      if (!loaded) {
        std::fprintf(stderr, "error: %s\n", loaded.error().c_str());
        return 2;
      }
      manifests.push_back(std::move(loaded).value());
    }
    if (manifests.size() != shards.size()) {
      std::fprintf(stderr, "error: %zu manifests for %zu shard files\n", manifests.size(),
                   shards.size());
      return 2;
    }
    std::vector<bool> manifest_seen(first.slice.n, false);
    for (const obs::RunManifest& m : manifests) {
      if (m.spec_fingerprint != fingerprint) {
        std::fprintf(stderr, "error: manifest for shard %zu/%zu describes a different "
                             "campaign (spec fingerprints differ)\n", m.shard_k, m.shard_n);
        return 2;
      }
      if (m.shard_n != first.slice.n || m.shard_k >= first.slice.n) {
        std::fprintf(stderr, "error: manifest slice %zu/%zu does not match the %zu-way "
                             "shard set\n", m.shard_k, m.shard_n, first.slice.n);
        return 2;
      }
      if (manifest_seen[m.shard_k]) {
        std::fprintf(stderr, "error: manifest for slice %zu/%zu appears more than once\n",
                     m.shard_k, m.shard_n);
        return 2;
      }
      manifest_seen[m.shard_k] = true;
      if (m.status != "ok") {
        std::fprintf(stderr, "error: shard %zu/%zu reports status \"%s\" in its manifest\n",
                     m.shard_k, m.shard_n, m.status.c_str());
        return 2;
      }
      if (m.total_shards != first.total_shards) {
        std::fprintf(stderr, "error: manifest for slice %zu/%zu expects %zu campaign shards, "
                             "shard files expect %zu\n", m.shard_k, m.shard_n, m.total_shards,
                     first.total_shards);
        return 2;
      }
      for (const core::ShardFile& shard : shards) {
        if (shard.slice.k == m.shard_k && shard.outcomes.size() != m.plans) {
          std::fprintf(stderr, "error: manifest for slice %zu/%zu claims %zu plans, shard "
                               "file holds %zu outcomes\n", m.shard_k, m.shard_n, m.plans,
                       shard.outcomes.size());
          return 2;
        }
      }
    }
  }

  core::CampaignObsOptions obs_options;
  obs_options.trace = trace_path != nullptr;
  obs_options.metrics = metrics_path != nullptr;
  core::CampaignObsData obs_data;

  core::ShardCollector collector(first.spec, first.total_shards, obs_options);
  for (core::ShardFile& shard : shards) {
    for (core::ShardOutcome& outcome : shard.outcomes) {
      if (auto added = collector.add(std::move(outcome)); !added) {
        std::fprintf(stderr, "error: %s\n", added.error().c_str());
        return 2;
      }
    }
  }
  if (!collector.complete()) {
    std::fprintf(stderr, "error: shard set covers %zu of %zu campaign shards\n",
                 collector.collected(), collector.expected());
    return 2;
  }
  const core::CampaignResult result = collector.finish(&obs_data);

  const std::string* out_path = args.value().get("out");
  const std::string path = out_path != nullptr ? *out_path : "results.json";
  std::ostringstream out;
  result.write_json(out);
  if (auto written = util::write_file_atomic(path, std::move(out).str()); !written) {
    std::fprintf(stderr, "error: %s\n", written.error().c_str());
    return 3;
  }

  if (trace_path != nullptr) {
    const std::string* filter = args.value().get("trace-filter");
    std::ostringstream trace_out;
    obs_data.trace.write_chrome_json(trace_out,
                                     filter != nullptr ? *filter : std::string_view{});
    if (auto written = util::write_file_atomic(*trace_path, std::move(trace_out).str());
        !written) {
      std::fprintf(stderr, "error: %s\n", written.error().c_str());
      return 3;
    }
  }
  if (metrics_path != nullptr) {
    if (auto written = util::write_file_atomic(*metrics_path, obs_data.metrics.jsonl());
        !written) {
      std::fprintf(stderr, "error: %s\n", written.error().c_str());
      return 3;
    }
  }

  if (manifest_out != nullptr) {
    const std::string folded = obs::campaign_manifest_json(manifests).dump(2) + "\n";
    if (auto written = util::write_file_atomic(*manifest_out, folded); !written) {
      std::fprintf(stderr, "error: %s\n", written.error().c_str());
      return 3;
    }
  }
  if (args.value().stats) {
    std::fputs(obs::shard_stats_table(manifests).c_str(), stdout);
    const std::vector<std::size_t> stragglers = obs::straggler_shards(manifests);
    if (!stragglers.empty()) {
      std::fprintf(stdout, "%zu straggler shard(s) exceeded 2x the median wall time\n",
                   stragglers.size());
    }
  }

  std::fprintf(stderr, "merged %zu shard files (%zu campaign shards): %zu records, %zu pings -> %s\n",
               shards.size(), collector.expected(), result.records.size(), result.pings.size(),
               path.c_str());
  return 0;
}
