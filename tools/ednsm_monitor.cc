// ednsm-monitor: longitudinal monitor mode — repeated campaigns over
// simulated days, a time-series store, rolling SLOs, and outage detection.
//
// Usage:
//   ednsm_monitor run --resolvers dns.google,ordns.he.net --vantages ec2-ohio
//                 [--epochs 8] [--rounds 3] [--protocol DoH] [--seed 1]
//                 [--threads N] [--domains a.com,b.com]
//                 [--outage resolver:from:to]...   (epochs [from, to) offline)
//                 [--window 3]
//                 [--out monitor.json] [--series-out series.jsonl]
//                 [--series-bin series.bin] [--slo-out slo.json]
//                 [--events-out events.json]
//   ednsm_monitor run --spec monitor_spec.json [--threads N] [--out ...]
//   ednsm_monitor slo --in monitor.json [--json]
//   ednsm_monitor events --in monitor.json
//   ednsm_monitor diagnose --in monitor.json [--threads N] [--baseline K]
//                 [--exemplars N] [--json] [--out diagnosis.json]
//   ednsm_monitor export --prom --in monitor.json
//
// `diagnose` re-runs each event's epochs from the spec's derived seeds (the
// monitor output has no per-query records) and attributes every event to a
// ranked cause; see monitor/diagnose.h.
//
// The run and diagnose outputs are pure functions of the spec:
// byte-identical series, SLO, event, and diagnosis files for any --threads
// value.
//
// Exit codes: 0 ok, 1 bad usage, 2 invalid spec, 3 I/O error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "monitor/diagnose.h"
#include "monitor/monitor.h"
#include "monitor/prom.h"
#include "resolver/registry.h"
#include "util/strings.h"

using namespace ednsm;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> outages;  // repeatable --outage
  bool all_resolvers = false;
  bool json = false;
  bool prom = false;

  [[nodiscard]] const std::string* get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? nullptr : &it->second;
  }
};

Result<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return Err{std::string("missing command (run|slo|events|diagnose|export)")};
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--all-resolvers") {
      args.all_resolvers = true;
      continue;
    }
    if (arg == "--json") {
      args.json = true;
      continue;
    }
    if (arg == "--prom") {
      args.prom = true;
      continue;
    }
    if (!arg.starts_with("--")) return Err{std::string("unexpected argument: ") + argv[i]};
    if (i + 1 >= argc) return Err{std::string(arg) + " requires a value"};
    if (arg == "--outage") {
      args.outages.emplace_back(argv[++i]);
      continue;
    }
    args.options[std::string(arg.substr(2))] = argv[++i];
  }
  return args;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  for (std::string_view part : util::split(csv, ',')) {
    if (!part.empty()) out.emplace_back(part);
  }
  return out;
}

// "resolver:from:to" -> OutageScript (epochs [from, to) offline).
Result<monitor::OutageScript> parse_outage(const std::string& text) {
  const std::size_t first = text.rfind(':');
  if (first == std::string::npos || first == 0) {
    return Err{std::string("--outage wants resolver:from:to (got ") + text + ")"};
  }
  const std::size_t second = text.rfind(':', first - 1);
  if (second == std::string::npos || second == 0) {
    return Err{std::string("--outage wants resolver:from:to (got ") + text + ")"};
  }
  monitor::OutageScript script;
  script.resolver = text.substr(0, second);
  script.from_epoch = std::atoi(text.substr(second + 1, first - second - 1).c_str());
  script.to_epoch = std::atoi(text.substr(first + 1).c_str());
  return script;
}

Result<core::Json> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Err{std::string("cannot open ") + path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto json = core::Json::parse(buffer.str());
  if (!json) return Err{path + " is not valid JSON: " + json.error()};
  return json;
}

Result<monitor::MonitorResult> load_result(const Args& args) {
  const std::string* in_path = args.get("in");
  if (in_path == nullptr) return Err{std::string("--in monitor.json is required")};
  auto json = load_json(*in_path);
  if (!json) return Err{json.error()};
  return monitor::MonitorResult::from_json(json.value());
}

Result<monitor::MonitorSpec> build_spec(const Args& args) {
  if (const std::string* spec_path = args.get("spec")) {
    auto json = load_json(*spec_path);
    if (!json) return Err{json.error()};
    return monitor::MonitorSpec::from_json(json.value());
  }

  monitor::MonitorSpec spec;
  // Monitor epochs stand in for days; a few rounds per epoch keeps each
  // campaign short while the epoch axis carries the longitudinal signal.
  spec.base.rounds = 3;
  if (args.all_resolvers) {
    for (const auto& s : resolver::paper_resolver_list()) {
      spec.base.resolvers.push_back(s.hostname);
    }
  } else if (const std::string* resolvers = args.get("resolvers")) {
    spec.base.resolvers = split_list(*resolvers);
  }
  if (const std::string* vantages = args.get("vantages")) {
    spec.base.vantage_ids = split_list(*vantages);
  }
  if (const std::string* domains = args.get("domains")) {
    spec.base.domains = split_list(*domains);
  }
  if (const std::string* rounds = args.get("rounds")) {
    spec.base.rounds = std::atoi(rounds->c_str());
  }
  if (const std::string* seed = args.get("seed")) {
    spec.base.seed = std::strtoull(seed->c_str(), nullptr, 10);
  }
  if (const std::string* protocol = args.get("protocol")) {
    if (auto p = client::protocol_from_string(*protocol); p.has_value()) {
      spec.base.protocol = *p;
    } else {
      return Err{std::string("unknown protocol: ") + *protocol};
    }
  }
  if (const std::string* epochs = args.get("epochs")) {
    spec.epochs = std::atoi(epochs->c_str());
  }
  if (const std::string* window = args.get("window")) {
    spec.slo.window_epochs = std::atoi(window->c_str());
  }
  for (const std::string& text : args.outages) {
    auto script = parse_outage(text);
    if (!script) return Err{script.error()};
    spec.outages.push_back(std::move(script).value());
  }
  return spec;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int cmd_run(const Args& args) {
  auto spec = build_spec(args);
  if (!spec) {
    std::fprintf(stderr, "error: %s\n", spec.error().c_str());
    return 2;
  }
  int threads = 1;
  if (const std::string* t = args.get("threads")) {
    threads = std::atoi(t->c_str());
    if (threads < 1) {
      std::fprintf(stderr, "error: --threads requires a positive integer (got %s)\n", t->c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "monitoring %zu resolvers x %zu vantages: %d epochs x %d rounds (%s)...\n",
               spec.value().base.resolvers.size(), spec.value().base.vantage_ids.size(),
               spec.value().epochs, spec.value().base.rounds,
               std::string(client::to_string(spec.value().base.protocol)).c_str());

  auto result = monitor::run_monitor(spec.value(), threads);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 2;
  }
  const monitor::MonitorResult& mon = result.value();

  const std::string* out_path = args.get("out");
  const std::string path = out_path != nullptr ? *out_path : "monitor.json";
  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 3;
    }
    mon.write_json(out);
  }
  if (const std::string* p = args.get("series-out")) {
    if (!write_file(*p, mon.series.jsonl())) return 3;
  }
  if (const std::string* p = args.get("series-bin")) {
    const util::Bytes blob = mon.series.to_binary();
    std::ofstream out(*p, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", p->c_str());
      return 3;
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }
  if (const std::string* p = args.get("slo-out")) {
    core::JsonArray arr;
    arr.reserve(mon.slos.size());
    for (const monitor::SloSample& s : mon.slos) arr.push_back(s.to_json());
    if (!write_file(*p, core::Json(std::move(arr)).dump(2) + "\n")) return 3;
  }
  if (const std::string* p = args.get("events-out")) {
    if (!write_file(*p, monitor::events_to_json(mon.events).dump(2) + "\n")) return 3;
  }

  std::size_t outages = 0;
  for (const monitor::MonitorEvent& e : mon.events) outages += e.type == "outage" ? 1 : 0;
  std::fprintf(stderr, "%zu series points, %zu slo samples, %zu events (%zu outages) -> %s\n",
               mon.series.size(), mon.slos.size(), mon.events.size(), outages, path.c_str());
  return 0;
}

int cmd_slo(const Args& args) {
  auto result = load_result(args);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 3;
  }
  if (args.json) {
    core::JsonArray arr;
    arr.reserve(result.value().slos.size());
    for (const monitor::SloSample& s : result.value().slos) arr.push_back(s.to_json());
    std::printf("%s\n", core::Json(std::move(arr)).dump(2).c_str());
    return 0;
  }
  std::printf("%-12s %-28s %5s %9s %9s %8s %8s %8s  %s\n", "vantage", "resolver", "epoch",
              "avail%", "win-av%", "p50", "p95", "p99", "state");
  for (const monitor::SloSample& s : result.value().slos) {
    std::printf("%-12s %-28s %5d %8.2f%% %8.2f%% %8.1f %8.1f %8.1f  %s\n", s.vantage.c_str(),
                s.resolver.c_str(), s.epoch, s.availability * 100.0,
                s.window_availability * 100.0, s.p50_ms, s.p95_ms, s.p99_ms, s.state.c_str());
  }
  return 0;
}

int cmd_events(const Args& args) {
  auto result = load_result(args);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 3;
  }
  std::printf("%s\n", monitor::events_to_json(result.value().events).dump(2).c_str());
  return 0;
}

int cmd_diagnose(const Args& args) {
  auto result = load_result(args);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 3;
  }
  int threads = 1;
  if (const std::string* t = args.get("threads")) {
    threads = std::atoi(t->c_str());
    if (threads < 1) {
      std::fprintf(stderr, "error: --threads requires a positive integer (got %s)\n", t->c_str());
      return 1;
    }
  }
  monitor::DiagnoseOptions opts;
  if (const std::string* b = args.get("baseline")) {
    opts.baseline_epochs = std::atoi(b->c_str());
    if (opts.baseline_epochs < 1) {
      std::fprintf(stderr, "error: --baseline requires a positive integer (got %s)\n", b->c_str());
      return 1;
    }
  }
  if (const std::string* n = args.get("exemplars")) {
    const int count = std::atoi(n->c_str());
    if (count < 0) {
      std::fprintf(stderr, "error: --exemplars must be >= 0 (got %s)\n", n->c_str());
      return 1;
    }
    opts.max_exemplars = static_cast<std::size_t>(count);
  }

  auto report = monitor::diagnose_events(result.value(), threads, opts);
  if (!report) {
    std::fprintf(stderr, "error: %s\n", report.error().c_str());
    return 2;
  }
  const std::string payload = report.value().to_json().dump(2) + "\n";
  if (const std::string* out_path = args.get("out")) {
    if (!write_file(*out_path, payload)) return 3;
  }
  if (args.json) {
    std::fputs(payload.c_str(), stdout);
  } else {
    std::fputs(monitor::render_diagnosis_report(report.value()).c_str(), stdout);
  }
  return 0;
}

int cmd_export(const Args& args) {
  if (!args.prom) {
    std::fprintf(stderr, "error: export needs --prom\n");
    return 1;
  }
  auto result = load_result(args);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 3;
  }
  std::printf("%s", monitor::to_prometheus(result.value().series).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) {
    std::fprintf(stderr,
                 "error: %s\nusage: ednsm_monitor run|slo|events|diagnose|export [options]\n",
                 args.error().c_str());
    return 1;
  }
  const std::string& command = args.value().command;
  if (command == "run") return cmd_run(args.value());
  if (command == "slo") return cmd_slo(args.value());
  if (command == "events") return cmd_events(args.value());
  if (command == "diagnose") return cmd_diagnose(args.value());
  if (command == "export") return cmd_export(args.value());
  std::fprintf(stderr, "error: unknown command '%s' (run|slo|events|diagnose|export)\n",
               command.c_str());
  return 1;
}
