// ednsm-perfgate: compares a freshly measured ednsm_bench summary against a
// committed BENCH_*.json ledger row and fails on regression.
//
// Usage:
//   ednsm_perfgate --ledger BENCH_fig2.json --current current.json
//                  [--tolerance-pct 15] [--sim-only]
//
// Three checks, in order:
//   1. Attribution: both files' "header" objects must be identical (same
//      suite, seed, threads, effective_threads, rounds, schema). Different
//      workloads are incomparable — that is an error, not a pass.
//   2. Simulation drift: the deterministic fields (records, pings,
//      error_rate, series_points, ...) must match EXACTLY. These are pure
//      functions of the spec, so any difference is a behavior change hiding
//      in a perf diff, and is flagged regardless of tolerance.
//   3. Wall clock: current wall_ms may exceed the ledger's by at most
//      --tolerance-pct percent (default 15). Skipped under --sim-only, the
//      machine-independent mode for CI runners whose absolute speed does not
//      match the machine that wrote the ledger.
//
// Exit codes: 0 ok, 1 usage/I-O, 2 incomparable workloads, 3 regression or
// simulation drift.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/fs.h"

using namespace ednsm;

namespace {

// The deterministic (spec-derived) summary fields, compared exactly when the
// ledger row carries them.
constexpr const char* kSimFields[] = {
    "records",    "pings",         "error_rate", "series_points", "slo_samples",
    "events",     "ring_ops",      "ring_checksum", "cold_queries", "warm_queries",
    "cold_median_ms", "warm_median_ms", "resolvers", "vantages", "epochs",
};

Result<core::Json> load_json(const std::string& path) {
  auto text = util::read_file(path);
  if (!text) return Err{text.error()};
  auto j = core::Json::parse(text.value());
  if (!j) return Err{path + ": " + j.error()};
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  bool sim_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--sim-only") {
      sim_only = true;
      continue;
    }
    if (!arg.starts_with("--") || i + 1 >= argc) {
      std::fprintf(stderr, "usage: ednsm_perfgate --ledger BENCH_x.json --current cur.json "
                           "[--tolerance-pct 15] [--sim-only]\n");
      return 1;
    }
    options[std::string(arg.substr(2))] = argv[++i];
  }
  if (!options.contains("ledger") || !options.contains("current")) {
    std::fprintf(stderr, "error: --ledger and --current are required\n");
    return 1;
  }
  double tolerance_pct = 15.0;
  if (const auto it = options.find("tolerance-pct"); it != options.end()) {
    tolerance_pct = std::atof(it->second.c_str());
  }

  auto ledger = load_json(options.at("ledger"));
  if (!ledger) {
    std::fprintf(stderr, "error: ledger: %s\n", ledger.error().c_str());
    return 1;
  }
  auto current = load_json(options.at("current"));
  if (!current) {
    std::fprintf(stderr, "error: current: %s\n", current.error().c_str());
    return 1;
  }

  const core::Json& lh = ledger.value().at("header");
  const core::Json& ch = current.value().at("header");
  if (!lh.is_object() || !ch.is_object()) {
    std::fprintf(stderr, "error: both files need a \"header\" attribution object\n");
    return 2;
  }
  if (!(lh == ch)) {
    std::fprintf(stderr,
                 "error: incomparable workloads — headers differ\n  ledger:  %s\n  current: %s\n",
                 lh.dump(0).c_str(), ch.dump(0).c_str());
    return 2;
  }

  bool drifted = false;
  for (const char* field : kSimFields) {
    const core::Json& lv = ledger.value().at(field);
    if (lv.is_null()) continue;  // ledger row doesn't carry this field
    const core::Json& cv = current.value().at(field);
    if (!(lv == cv)) {
      std::fprintf(stderr, "DRIFT %s: ledger %s, current %s (deterministic field)\n", field,
                   lv.dump(0).c_str(), cv.dump(0).c_str());
      drifted = true;
    }
  }
  if (drifted) {
    std::fprintf(stderr, "FAIL: simulation output drifted from the ledger — this is a "
                         "behavior change, not a perf delta\n");
    return 3;
  }

  if (!sim_only) {
    if (!ledger.value().at("wall_ms").is_number() ||
        !current.value().at("wall_ms").is_number()) {
      std::fprintf(stderr, "error: both files need a numeric wall_ms\n");
      return 2;
    }
    const double ledger_wall = ledger.value().at("wall_ms").as_number();
    const double current_wall = current.value().at("wall_ms").as_number();
    const double delta_pct =
        ledger_wall > 0.0 ? 100.0 * (current_wall - ledger_wall) / ledger_wall : 0.0;
    if (delta_pct > tolerance_pct) {
      std::fprintf(stderr, "FAIL: wall_ms %.1f -> %.1f (%+.1f%%, tolerance %.1f%%)\n",
                   ledger_wall, current_wall, delta_pct, tolerance_pct);
      return 3;
    }
    std::fprintf(stderr, "ok: wall_ms %.1f -> %.1f (%+.1f%%, tolerance %.1f%%)\n", ledger_wall,
                 current_wall, delta_pct, tolerance_pct);
  } else {
    std::fprintf(stderr, "ok: deterministic fields match the ledger (wall skipped: --sim-only)\n");
  }
  return 0;
}
