// ednsm-report: render paper-style figures and tables from a results JSON
// produced by ednsm_measure.
//
// Usage:
//   ednsm_report results.json                          # summary + availability
//   ednsm_report results.json --figure NA --vantage ec2-ohio
//   ednsm_report results.json --remote-table Asia --near ec2-seoul --far ec2-frankfurt
//   ednsm_report results.json --winners ec2-ohio
//   ednsm_report results.json --flight-recorder 10
//   ednsm_report monitor.json --monitor-dashboard dashboard.html
//   ednsm_report monitor.json --monitor-dashboard dashboard.html --diagnosis diagnosis.json
//
// --diagnosis annotates the dashboard's event timeline and adds a verdict
// table from an `ednsm_monitor diagnose --out` report.
//
// Exit codes: 0 ok, 1 bad usage, 3 I/O / parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/campaign.h"
#include "core/recommend.h"
#include "monitor/monitor.h"
#include "report/decomposition.h"
#include "report/figures.h"
#include "report/flight_recorder.h"
#include "web/dashboard.h"

using namespace ednsm;

namespace {

Result<geo::Continent> parse_continent(std::string_view name) {
  if (name == "NA") return geo::Continent::NorthAmerica;
  if (name == "EU") return geo::Continent::Europe;
  if (name == "Asia") return geo::Continent::Asia;
  if (name == "Oceania") return geo::Continent::Oceania;
  return Err{std::string("unknown continent (use NA|EU|Asia|Oceania): ") + std::string(name)};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ednsm_report <results.json> [--figure NA|EU|Asia --vantage ID]\n"
                 "       [--remote-table NA|EU|Asia --near ID --far ID] [--winners ID]\n"
                 "       [--recommend ID] [--decomposition table|figure]\n"
                 "       [--flight-recorder N]\n"
                 "       [--monitor-dashboard out.html]   (input: ednsm_monitor run output)\n"
                 "       [--diagnosis diagnosis.json]     (annotate the monitor dashboard)\n");
    return 1;
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 3;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto json = core::Json::parse(buffer.str());
  if (!json) {
    std::fprintf(stderr, "error: %s\n", json.error().c_str());
    return 3;
  }
  std::map<std::string, std::string> options;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "error: unexpected argument %s\n", argv[i]);
      return 1;
    }
    options[argv[i] + 2] = argv[i + 1];
  }

  // Dashboard mode reads a monitor result, not a campaign result — branch
  // before the campaign parse.
  if (options.contains("monitor-dashboard")) {
    auto mon = monitor::MonitorResult::from_json(json.value());
    if (!mon) {
      std::fprintf(stderr, "error: %s\n", mon.error().c_str());
      return 3;
    }
    monitor::DiagnosisReport diagnoses;
    bool have_diagnoses = false;
    if (options.contains("diagnosis")) {
      std::ifstream diag_in(options["diagnosis"]);
      if (!diag_in) {
        std::fprintf(stderr, "error: cannot open %s\n", options["diagnosis"].c_str());
        return 3;
      }
      std::stringstream diag_buffer;
      diag_buffer << diag_in.rdbuf();
      auto diag_json = core::Json::parse(diag_buffer.str());
      if (!diag_json) {
        std::fprintf(stderr, "error: %s\n", diag_json.error().c_str());
        return 3;
      }
      auto parsed = monitor::DiagnosisReport::from_json(diag_json.value());
      if (!parsed) {
        std::fprintf(stderr, "error: %s\n", parsed.error().c_str());
        return 3;
      }
      diagnoses = std::move(parsed).value();
      have_diagnoses = true;
    }
    const std::string& out_path = options["monitor-dashboard"];
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 3;
    }
    out << web::render_monitor_dashboard(mon.value(), have_diagnoses ? &diagnoses : nullptr);
    std::fprintf(stderr, "dashboard (%zu slo samples, %zu events, %zu diagnoses) -> %s\n",
                 mon.value().slos.size(), mon.value().events.size(), diagnoses.diagnoses.size(),
                 out_path.c_str());
    return 0;
  }

  auto result = core::CampaignResult::from_json(json.value());
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 3;
  }

  if (options.contains("figure")) {
    auto continent = parse_continent(options["figure"]);
    if (!continent) {
      std::fprintf(stderr, "error: %s\n", continent.error().c_str());
      return 1;
    }
    const std::string vantage =
        options.contains("vantage") ? options["vantage"] : result.value().spec.vantage_ids[0];
    const std::string title = options["figure"] + "-located resolvers from " + vantage;
    std::printf("%s\n",
                report::render_figure(result.value(), vantage, continent.value(), title)
                    .c_str());
    return 0;
  }

  if (options.contains("remote-table")) {
    auto continent = parse_continent(options["remote-table"]);
    if (!continent || !options.contains("near") || !options.contains("far")) {
      std::fprintf(stderr, "error: --remote-table needs a continent, --near and --far\n");
      return 1;
    }
    std::printf("%s\n", report::remote_median_table(result.value(), continent.value(),
                                                    options["near"], options["far"])
                            .to_text()
                            .c_str());
    return 0;
  }

  if (options.contains("recommend")) {
    const std::string& vantage = options["recommend"];
    const core::RecommendationReport rec =
        core::recommend_resolvers(result.value(), vantage);
    std::printf("recommended resolvers from %s (best first):\n", vantage.c_str());
    for (const core::Recommendation& r : rec.ranked) {
      std::printf("  %7.1f ms med  %7.1f ms p90  %5.2f%% err  %s%s\n", r.median_ms,
                  r.p90_ms, r.error_rate * 100.0, r.hostname.c_str(),
                  r.mainstream ? "  [mainstream]" : "");
    }
    std::printf("rejected:\n");
    for (const core::Rejection& r : rec.rejected) {
      std::printf("  %-40s %s\n", r.hostname.c_str(),
                  std::string(core::to_string(r.reason)).c_str());
    }
    if (const auto alt = rec.best_alternative()) {
      std::printf("\nbest non-mainstream alternative: %s (%.1f ms median)\n",
                  alt->hostname.c_str(), alt->median_ms);
    }
    return 0;
  }

  if (options.contains("decomposition")) {
    const std::string& mode = options["decomposition"];
    if (mode == "table") {
      std::printf("%s\n", report::phase_decomposition_table(result.value()).to_text().c_str());
      return 0;
    }
    if (mode == "figure") {
      std::printf("%s\n", report::render_cold_warm_figure(result.value()).c_str());
      return 0;
    }
    std::fprintf(stderr, "error: --decomposition takes 'table' or 'figure' (got %s)\n",
                 mode.c_str());
    return 1;
  }

  if (options.contains("flight-recorder")) {
    const int top_n = std::atoi(options["flight-recorder"].c_str());
    if (top_n < 1) {
      std::fprintf(stderr, "error: --flight-recorder takes a positive count (got %s)\n",
                   options["flight-recorder"].c_str());
      return 1;
    }
    std::printf("%s", report::render_flight_recorder(result.value(),
                                                     static_cast<std::size_t>(top_n))
                          .c_str());
    return 0;
  }

  if (options.contains("winners")) {
    std::printf("non-mainstream resolvers beating every mainstream median from %s:\n",
                options["winners"].c_str());
    for (const std::string& host :
         report::nonmainstream_winners(result.value(), options["winners"])) {
      std::printf("  %s\n", host.c_str());
    }
    return 0;
  }

  // Default: summary + availability.
  std::printf("campaign: %zu records, %zu pings, %zu resolvers, %zu vantages\n\n",
              result.value().records.size(), result.value().pings.size(),
              result.value().spec.resolvers.size(), result.value().spec.vantage_ids.size());
  std::printf("%s\n", report::availability_report(result.value()).c_str());
  std::printf("%s\n", report::max_median_table(result.value()).to_text().c_str());
  return 0;
}
