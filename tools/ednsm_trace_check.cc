// ednsm-trace-check: structural validator for the Chrome trace-event JSON
// that `ednsm_measure --trace` emits. Run in CI after a traced campaign so a
// schema regression (missing key, wrong phase letter, negative timestamp)
// fails the build instead of silently producing a file chrome://tracing
// rejects. Self-contained: only the repo's own JSON parser, no external
// tooling.
//
// Checks:
//   - the file is one JSON object with a "traceEvents" array
//   - every event has "ph" in {M, X, i}, a string "name", numeric pid/tid
//   - "M" metadata events carry args.name (process_name / thread_name)
//   - "X" complete events have numeric ts >= 0, dur >= 0, and a string "cat"
//   - "i" instant events have numeric ts >= 0, a string "cat", and "s"
//   - otherData.dropped_events, when present, is a non-negative number
//   - with --nested: complete events on one (pid, tid) must strictly nest —
//     a span that starts inside another span must end no later than it (a
//     child outliving its parent means the parent closed before the child)
//
// --nested is opt-in because it only holds for traces whose spans follow a
// call-stack discipline. Campaign traces put every concurrent query of a
// round on one simulated thread, so their handshake/exchange intervals
// legitimately overlap without a parent/child relation.
//
// A second mode validates the runtime-telemetry artifacts (the orchestrator
// contract for sharded campaigns):
//
//   ednsm_trace_check --heartbeat heartbeat.json
//   ednsm_trace_check --heartbeat manifest.json
//
// accepts exactly the documents `ednsm_measure --progress-file/--manifest`
// writes — the file's "schema" field selects ednsm-heartbeat or
// ednsm-run-manifest, and the strict parsers in obs/runtime enforce every
// field (status enums, completion in [0,1], plans_done <= plans_total,
// monotone timestamps, typed stage entries). Malformed fixtures under
// tests/trace_fixtures/ keep this surface tested.
//
// Usage: ednsm_trace_check trace.json [--min-events N] [--nested]
//        ednsm_trace_check --heartbeat file.json
// Exit codes: 0 valid, 1 bad usage, 2 validation failure, 3 I/O error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/runtime.h"
#include "util/json.h"

using namespace ednsm;

namespace {

bool fail(std::size_t index, const char* what) {
  std::fprintf(stderr, "trace-check: event %zu: %s\n", index, what);
  return false;
}

bool check_event(const core::Json& e, std::size_t index) {
  if (!e.is_object()) return fail(index, "not an object");
  if (!e.at("ph").is_string()) return fail(index, "missing phase \"ph\"");
  if (!e.at("name").is_string()) return fail(index, "missing \"name\"");
  if (!e.at("pid").is_number() || !e.at("tid").is_number()) {
    return fail(index, "missing numeric pid/tid");
  }
  const std::string& ph = e.at("ph").as_string();
  if (ph == "M") {
    if (!e.at("args").at("name").is_string()) return fail(index, "metadata without args.name");
    return true;
  }
  if (ph != "X" && ph != "i") return fail(index, "unknown phase (expect M, X, or i)");
  if (!e.at("ts").is_number() || e.at("ts").as_number() < 0) {
    return fail(index, "missing or negative \"ts\"");
  }
  if (!e.at("cat").is_string()) return fail(index, "missing \"cat\"");
  if (ph == "X" && (!e.at("dur").is_number() || e.at("dur").as_number() < 0)) {
    return fail(index, "complete event without non-negative \"dur\"");
  }
  if (ph == "i" && !e.at("s").is_string()) return fail(index, "instant event without \"s\"");
  return true;
}

// --nested: complete events on one (pid, tid) must form a proper span tree.
// Sweep each thread's spans in start order (longest first on ties, so a
// parent precedes the children sharing its start) with a stack of open span
// end times; a span that starts inside an open span must close no later.
bool check_nesting(const core::JsonArray& events) {
  struct Span {
    double ts = 0;
    double dur = 0;
    std::size_t index = 0;
  };
  std::map<std::pair<double, double>, std::vector<Span>> threads;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const core::Json& e = events[i];
    if (e.at("ph").as_string() != "X") continue;
    threads[{e.at("pid").as_number(), e.at("tid").as_number()}].push_back(
        {e.at("ts").as_number(), e.at("dur").as_number(), i});
  }
  for (auto& [thread, spans] : threads) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      if (a.dur != b.dur) return a.dur > b.dur;
      return a.index < b.index;
    });
    std::vector<double> open;  // end times of enclosing spans, outermost first
    for (const Span& s : spans) {
      while (!open.empty() && open.back() <= s.ts) open.pop_back();
      if (!open.empty() && s.ts + s.dur > open.back()) {
        return fail(s.index, "span outlives its enclosing span (parent closed before child)");
      }
      open.push_back(s.ts + s.dur);
    }
  }
  return true;
}

// --heartbeat: validate one runtime-telemetry artifact. The schema field
// routes to the matching strict parser; anything else is a failure.
int check_heartbeat_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace-check: cannot open %s\n", path);
    return 3;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto json = core::Json::parse(buffer.str());
  if (!json) {
    std::fprintf(stderr, "trace-check: not valid JSON: %s\n", json.error().c_str());
    return 2;
  }
  const core::Json& root = json.value();
  if (!root.is_object() || !root.at("schema").is_string()) {
    std::fprintf(stderr, "trace-check: missing \"schema\" field\n");
    return 2;
  }
  const std::string& schema = root.at("schema").as_string();
  if (schema == obs::RuntimeHeartbeat::kSchemaName) {
    auto parsed = obs::RuntimeHeartbeat::heartbeat_from_json(root);
    if (!parsed) {
      std::fprintf(stderr, "trace-check: invalid heartbeat: %s\n", parsed.error().c_str());
      return 2;
    }
    std::printf("trace-check: ok — heartbeat, shard %zu/%zu, status %s, %.1f%% complete\n",
                parsed.value().shard_k, parsed.value().shard_n, parsed.value().status.c_str(),
                parsed.value().completion * 100.0);
    return 0;
  }
  if (schema == obs::RunManifest::kSchemaName) {
    auto parsed = obs::RunManifest::manifest_from_json(root);
    if (!parsed) {
      std::fprintf(stderr, "trace-check: invalid run manifest: %s\n", parsed.error().c_str());
      return 2;
    }
    std::printf("trace-check: ok — run manifest, shard %zu/%zu, status %s, %zu plans\n",
                parsed.value().shard_k, parsed.value().shard_n, parsed.value().status.c_str(),
                parsed.value().plans);
    return 0;
  }
  std::fprintf(stderr, "trace-check: unknown schema \"%s\"\n", schema.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: ednsm_trace_check trace.json [--min-events N] [--nested]\n"
                         "       ednsm_trace_check --heartbeat file.json\n");
    return 1;
  }
  if (std::string_view(argv[1]) == "--heartbeat") {
    if (argc != 3) {
      std::fprintf(stderr, "usage: ednsm_trace_check --heartbeat file.json\n");
      return 1;
    }
    return check_heartbeat_file(argv[2]);
  }
  long long min_events = 0;
  bool nested = false;
  for (int i = 2; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--min-events" && i + 1 < argc) {
      min_events = std::atoll(argv[++i]);
    } else if (std::string_view(argv[i]) == "--nested") {
      nested = true;
    } else {
      std::fprintf(stderr, "trace-check: unknown argument %s\n", argv[i]);
      return 1;
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace-check: cannot open %s\n", argv[1]);
    return 3;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto json = core::Json::parse(buffer.str());
  if (!json) {
    std::fprintf(stderr, "trace-check: not valid JSON: %s\n", json.error().c_str());
    return 2;
  }
  const core::Json& root = json.value();
  if (!root.is_object() || !root.at("traceEvents").is_array()) {
    std::fprintf(stderr, "trace-check: missing traceEvents array\n");
    return 2;
  }

  const core::JsonArray& events = root.at("traceEvents").as_array();
  std::size_t metadata = 0;
  std::size_t payload = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!check_event(events[i], i)) return 2;
    if (events[i].at("ph").as_string() == "M") {
      ++metadata;
    } else {
      ++payload;
    }
  }

  if (nested && !check_nesting(events)) return 2;

  const core::Json& dropped = root.at("otherData").at("dropped_events");
  if (!dropped.is_null() && (!dropped.is_number() || dropped.as_number() < 0)) {
    std::fprintf(stderr, "trace-check: otherData.dropped_events is not a non-negative number\n");
    return 2;
  }

  if (payload < static_cast<std::size_t>(min_events)) {
    std::fprintf(stderr, "trace-check: %zu payload events, expected at least %lld\n", payload,
                 min_events);
    return 2;
  }
  std::printf("trace-check: ok — %zu payload events, %zu metadata records\n", payload, metadata);
  return 0;
}
