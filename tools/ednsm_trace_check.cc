// ednsm-trace-check: structural validator for the Chrome trace-event JSON
// that `ednsm_measure --trace` emits. Run in CI after a traced campaign so a
// schema regression (missing key, wrong phase letter, negative timestamp)
// fails the build instead of silently producing a file chrome://tracing
// rejects. Self-contained: only the repo's own JSON parser, no external
// tooling.
//
// Checks:
//   - the file is one JSON object with a "traceEvents" array
//   - every event has "ph" in {M, X, i}, a string "name", numeric pid/tid
//   - "M" metadata events carry args.name (process_name / thread_name)
//   - "X" complete events have numeric ts >= 0, dur >= 0, and a string "cat"
//   - "i" instant events have numeric ts >= 0, a string "cat", and "s"
//   - otherData.dropped_events, when present, is a non-negative number
//
// Usage: ednsm_trace_check trace.json [--min-events N]
// Exit codes: 0 valid, 1 bad usage, 2 validation failure, 3 I/O error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/json.h"

using namespace ednsm;

namespace {

bool fail(std::size_t index, const char* what) {
  std::fprintf(stderr, "trace-check: event %zu: %s\n", index, what);
  return false;
}

bool check_event(const core::Json& e, std::size_t index) {
  if (!e.is_object()) return fail(index, "not an object");
  if (!e.at("ph").is_string()) return fail(index, "missing phase \"ph\"");
  if (!e.at("name").is_string()) return fail(index, "missing \"name\"");
  if (!e.at("pid").is_number() || !e.at("tid").is_number()) {
    return fail(index, "missing numeric pid/tid");
  }
  const std::string& ph = e.at("ph").as_string();
  if (ph == "M") {
    if (!e.at("args").at("name").is_string()) return fail(index, "metadata without args.name");
    return true;
  }
  if (ph != "X" && ph != "i") return fail(index, "unknown phase (expect M, X, or i)");
  if (!e.at("ts").is_number() || e.at("ts").as_number() < 0) {
    return fail(index, "missing or negative \"ts\"");
  }
  if (!e.at("cat").is_string()) return fail(index, "missing \"cat\"");
  if (ph == "X" && (!e.at("dur").is_number() || e.at("dur").as_number() < 0)) {
    return fail(index, "complete event without non-negative \"dur\"");
  }
  if (ph == "i" && !e.at("s").is_string()) return fail(index, "instant event without \"s\"");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: ednsm_trace_check trace.json [--min-events N]\n");
    return 1;
  }
  long long min_events = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--min-events" && i + 1 < argc) {
      min_events = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr, "trace-check: unknown argument %s\n", argv[i]);
      return 1;
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace-check: cannot open %s\n", argv[1]);
    return 3;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto json = core::Json::parse(buffer.str());
  if (!json) {
    std::fprintf(stderr, "trace-check: not valid JSON: %s\n", json.error().c_str());
    return 2;
  }
  const core::Json& root = json.value();
  if (!root.is_object() || !root.at("traceEvents").is_array()) {
    std::fprintf(stderr, "trace-check: missing traceEvents array\n");
    return 2;
  }

  const core::JsonArray& events = root.at("traceEvents").as_array();
  std::size_t metadata = 0;
  std::size_t payload = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!check_event(events[i], i)) return 2;
    if (events[i].at("ph").as_string() == "M") {
      ++metadata;
    } else {
      ++payload;
    }
  }

  const core::Json& dropped = root.at("otherData").at("dropped_events");
  if (!dropped.is_null() && (!dropped.is_number() || dropped.as_number() < 0)) {
    std::fprintf(stderr, "trace-check: otherData.dropped_events is not a non-negative number\n");
    return 2;
  }

  if (payload < static_cast<std::size_t>(min_events)) {
    std::fprintf(stderr, "trace-check: %zu payload events, expected at least %lld\n", payload,
                 min_events);
    return 2;
  }
  std::printf("trace-check: ok — %zu payload events, %zu metadata records\n", payload, metadata);
  return 0;
}
