// ednsm-watch: live terminal status for running measurement campaigns.
//
// Usage:
//   ednsm_watch hb0.json [hb1.json ...] [--once] [--interval-ms 1000]
//               [--prom runtime.prom] [--stale-after MS]
//
// Each positional argument is a heartbeat file written by
// `ednsm_measure --progress-file` (one per process of a sharded campaign).
// The watcher re-reads the whole fleet every interval and renders a
// per-shard/per-stage table: completion, throughput, ETA, collector lag,
// staleness (ms since the process last wrote — a wedged or dead shard shows
// frozen progress with growing staleness), and the expand/simulate/collect
// stage counters. It exits when every heartbeat reports a terminal status
// ("done"/"failed"), or after one render with --once.
//
// --prom additionally writes the fleet's runtime gauges in Prometheus text
// exposition (monitor/prom) to the given path on every cycle, atomically, so
// a node-exporter textfile collector can scrape a live campaign.
//
// --stale-after MS flags shards whose heartbeat timestamp lags the fleet's
// newest by more than the threshold: the table shows STALE instead of the
// shard's (frozen) status, and the --prom export gains an
// ednsm_runtime_stale gauge per shard. Without it a dead worker keeps
// showing its last counters forever. Terminal shards ("done"/"failed") are
// never flagged.
//
// Files that do not exist yet (shard process not started) or fail to parse
// mid-rename show as "waiting"; the watcher never fails because of them.
// This tool lives entirely in the wall-clock telemetry domain: it reads
// heartbeats, never results, and all clock access goes through obs/runtime.
//
// Exit codes: 0 ok (fleet finished or --once), 1 bad usage, 3 --prom I/O.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "monitor/prom.h"
#include "obs/runtime.h"
#include "util/fs.h"
#include "util/json.h"

using namespace ednsm;

namespace {

struct WatchedFile {
  std::string path;
  bool valid = false;
  obs::RuntimeHeartbeat heartbeat;
};

// Best-effort read: a missing file (process not started) or a torn/invalid
// read (should not happen — writes are atomic — but a hostile file might)
// leaves the entry in the "waiting" state instead of failing the watcher.
void refresh(WatchedFile& w) {
  w.valid = false;
  auto text = util::read_file(w.path);
  if (!text) return;
  auto json = util::Json::parse(text.value());
  if (!json) return;
  auto parsed = obs::RuntimeHeartbeat::heartbeat_from_json(json.value());
  if (!parsed) return;
  w.heartbeat = std::move(parsed).value();
  w.valid = true;
}

std::string render(const std::vector<WatchedFile>& fleet, std::uint64_t stale_after_ms) {
  const std::uint64_t now_ms = obs::runtime_unix_ms();
  std::vector<obs::RuntimeHeartbeat> beats;
  for (const WatchedFile& w : fleet) {
    if (w.valid) beats.push_back(w.heartbeat);
  }
  const std::uint64_t fleet_latest = monitor::fleet_latest_update_ms(beats);
  std::string out =
      "shard   status     progress             rate/s      eta_ms   lag   stale_ms\n";
  char line[256];
  for (const WatchedFile& w : fleet) {
    if (!w.valid) {
      std::snprintf(line, sizeof(line), "  -     waiting    %-48s\n", w.path.c_str());
      out += line;
      continue;
    }
    const obs::RuntimeHeartbeat& h = w.heartbeat;
    const std::uint64_t stale =
        now_ms > h.updated_unix_ms ? now_ms - h.updated_unix_ms : 0;
    const bool is_stale =
        stale_after_ms > 0 && monitor::heartbeat_is_stale(h, fleet_latest, stale_after_ms);
    std::snprintf(line, sizeof(line),
                  "%2zu/%-2zu  %-9s  %4llu/%-4llu (%5.1f%%)  %8.1f  %10.1f  %4llu  %9llu\n",
                  h.shard_k, h.shard_n, is_stale ? "STALE" : h.status.c_str(),
                  static_cast<unsigned long long>(h.plans_done),
                  static_cast<unsigned long long>(h.plans_total), h.completion * 100.0,
                  h.plans_per_sec, h.eta_ms,
                  static_cast<unsigned long long>(h.collector_lag),
                  static_cast<unsigned long long>(stale));
    out += line;
    for (const obs::RuntimeStageSnapshot& s : h.stages) {
      std::snprintf(line, sizeof(line),
                    "        %-9s  in=%-8llu out=%-8llu stalls=%-8llu stall_ms=%-9.1f "
                    "busy_ms=%-9.1f maxq=%llu\n",
                    s.stage.c_str(), static_cast<unsigned long long>(s.items_in),
                    static_cast<unsigned long long>(s.items_out),
                    static_cast<unsigned long long>(s.stall_spins),
                    static_cast<double>(s.stall_ns) / 1e6,
                    static_cast<double>(s.busy_ns) / 1e6,
                    static_cast<unsigned long long>(s.max_queue_depth));
      out += line;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<WatchedFile> fleet;
  bool once = false;
  long interval_ms = 1000;
  std::string prom_path;
  std::uint64_t stale_after_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --interval-ms requires a value\n");
        return 1;
      }
      interval_ms = std::atol(argv[++i]);
      if (interval_ms < 1) {
        std::fprintf(stderr, "error: --interval-ms requires a positive integer\n");
        return 1;
      }
    } else if (arg == "--prom") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --prom requires a value\n");
        return 1;
      }
      prom_path = argv[++i];
    } else if (arg == "--stale-after") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --stale-after requires a value\n");
        return 1;
      }
      const long value = std::atol(argv[++i]);
      if (value < 1) {
        std::fprintf(stderr, "error: --stale-after requires a positive ms threshold\n");
        return 1;
      }
      stale_after_ms = static_cast<std::uint64_t>(value);
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "error: unknown flag: %s\n", argv[i]);
      return 1;
    } else {
      fleet.push_back(WatchedFile{std::string(arg), false, {}});
    }
  }
  if (fleet.empty()) {
    std::fprintf(stderr,
                 "usage: ednsm_watch hb0.json [hb1.json ...] [--once] "
                 "[--interval-ms N] [--prom out.prom] [--stale-after MS]\n");
    return 1;
  }

  for (bool first = true;; first = false) {
    for (WatchedFile& w : fleet) refresh(w);

    if (!once && !first) std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home
    std::fputs(render(fleet, stale_after_ms).c_str(), stdout);
    std::fflush(stdout);

    if (!prom_path.empty()) {
      std::vector<obs::RuntimeHeartbeat> beats;
      for (const WatchedFile& w : fleet) {
        if (w.valid) beats.push_back(w.heartbeat);
      }
      if (auto written = util::write_file_atomic(
              prom_path, monitor::to_prometheus(beats, stale_after_ms));
          !written) {
        std::fprintf(stderr, "error: %s\n", written.error().c_str());
        return 3;
      }
    }

    bool all_terminal = true;
    for (const WatchedFile& w : fleet) {
      if (!w.valid || (w.heartbeat.status != "done" && w.heartbeat.status != "failed")) {
        all_terminal = false;
      }
    }
    if (once || all_terminal) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
