#include "lint/baseline.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>

namespace ednsm::lint {

namespace {

// Minimal recursive-descent JSON reader for the baseline schema. The lint
// library is deliberately self-contained (it must not depend on the code it
// analyzes), so it cannot use src/util/json.h.
struct Reader {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  }
  bool expect(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    error = "baseline: expected '" + std::string(1, c) + "' at offset " + std::to_string(pos);
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool read_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default:
            error = "baseline: unsupported escape '\\" + std::string(1, esc) + "'";
            return false;
        }
      }
      out->push_back(c);
    }
    if (pos >= text.size()) {
      error = "baseline: unterminated string";
      return false;
    }
    ++pos;  // closing quote
    return true;
  }
};

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

bool matches(const BaselineEntry& e, const Diagnostic& d) {
  if (e.rule != d.rule) return false;
  if (!(d.path == e.path ||
        (d.path.size() > e.path.size() && d.path.ends_with(e.path) &&
         d.path[d.path.size() - e.path.size() - 1] == '/'))) {
    return false;
  }
  return e.key.empty() || e.key == d.key;
}

}  // namespace

bool parse_baseline(std::string_view json_text, std::vector<BaselineEntry>* out,
                    std::string* error) {
  out->clear();
  Reader r{json_text, 0, {}};
  if (!r.expect('{')) {
    *error = r.error;
    return false;
  }
  std::string top_key;
  if (!r.read_string(&top_key) || top_key != "findings" || !r.expect(':') || !r.expect('[')) {
    *error = r.error.empty() ? std::string("baseline: expected {\"findings\": [...]}") : r.error;
    return false;
  }
  if (!r.peek(']')) {
    do {
      if (!r.expect('{')) {
        *error = r.error;
        return false;
      }
      BaselineEntry e;
      if (!r.peek('}')) {
        do {
          std::string field;
          std::string value;
          if (!r.read_string(&field) || !r.expect(':') || !r.read_string(&value)) {
            *error = r.error;
            return false;
          }
          if (field == "rule") {
            e.rule = value;
          } else if (field == "path") {
            e.path = value;
          } else if (field == "key") {
            e.key = value;
          } else if (field == "reason") {
            e.reason = value;
          } else {
            *error = "baseline: unknown field '" + field + "'";
            return false;
          }
        } while (r.peek(',') && r.expect(','));
      }
      if (!r.expect('}')) {
        *error = r.error;
        return false;
      }
      if (e.rule.empty() || e.path.empty()) {
        *error = "baseline: every entry needs non-empty \"rule\" and \"path\"";
        return false;
      }
      if (e.reason.empty()) {
        *error = "baseline: entry for " + e.rule + " @ " + e.path +
                 " has no \"reason\": accepted findings must say why";
        return false;
      }
      out->push_back(std::move(e));
    } while (r.peek(',') && r.expect(','));
  }
  if (!r.expect(']') || !r.expect('}')) {
    *error = r.error;
    return false;
  }
  return true;
}

BaselineResult apply_baseline(std::vector<Diagnostic> diags,
                              const std::vector<BaselineEntry>& baseline) {
  BaselineResult result;
  std::vector<bool> used(baseline.size(), false);
  for (Diagnostic& d : diags) {
    bool covered = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (matches(baseline[i], d)) {
        used[i] = true;
        covered = true;  // keep scanning: mark every entry this finding vouches for
      }
    }
    if (covered) {
      ++result.suppressed;
    } else {
      result.remaining.push_back(std::move(d));
    }
  }
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (!used[i]) result.stale.push_back(baseline[i]);
  }
  return result;
}

std::string baseline_to_json(const std::vector<Diagnostic>& diags) {
  // One entry per distinct (rule, path, key): the baseline is identity-based,
  // not occurrence-based.
  std::set<std::array<std::string, 3>> entries;
  for (const Diagnostic& d : diags) {
    entries.insert({d.rule, d.path, d.key});
  }
  std::string out = "{\"findings\": [\n";
  bool first = true;
  for (const auto& [rule, path, key] : entries) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"rule\": " + json_quote(rule) + ", \"path\": " + json_quote(path) +
           ", \"key\": " + json_quote(key) + ", \"reason\": \"TODO: justify\"}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ednsm::lint
