// Baseline mechanism: a committed JSON file of accepted findings
// (tools/lint/baseline.json) that the CLI subtracts from the live report.
//
// Entries match on (rule, path suffix, key) — never on line numbers, so
// unrelated edits don't churn the baseline. Every entry must carry a reason,
// and every entry must still match a live finding (stale entries are
// reported so the baseline cannot silently outlive its debt).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.h"

namespace ednsm::lint {

struct BaselineEntry {
  std::string rule;
  std::string path;    // suffix-matched against diagnostic paths
  std::string key;     // "" matches any key for (rule, path)
  std::string reason;  // required: why this finding is accepted
};

// Parse {"findings":[{"rule":...,"path":...,"key":...,"reason":...}]}.
// Returns false and sets *error on malformed input or a missing reason.
[[nodiscard]] bool parse_baseline(std::string_view json_text, std::vector<BaselineEntry>* out,
                                  std::string* error);

struct BaselineResult {
  std::vector<Diagnostic> remaining;       // findings the baseline does not cover
  std::vector<BaselineEntry> stale;        // entries that matched nothing
  std::size_t suppressed = 0;              // findings the baseline absorbed
};

[[nodiscard]] BaselineResult apply_baseline(std::vector<Diagnostic> diags,
                                            const std::vector<BaselineEntry>& baseline);

// Serialize the given findings as a baseline file (reasons stubbed with
// "TODO: justify" so --write-baseline output is reviewable, not committable
// as-is). Stable output: entries sorted, one per line.
[[nodiscard]] std::string baseline_to_json(const std::vector<Diagnostic>& diags);

}  // namespace ednsm::lint
