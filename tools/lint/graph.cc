#include "lint/graph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace ednsm::lint {

namespace {

constexpr std::string_view kTaintRule = "determinism-taint";
constexpr std::string_view kWallclockRule = "determinism-wallclock";
constexpr std::string_view kObsDomainRule = "obs-domain-separation";

// The wall-clock telemetry domain: obs/runtime.{h,cc}. The only place host
// clock reads are sanctioned (check_wallclock exempts it); the price is that
// nothing defined there may flow into a deterministic sink.
bool runtime_domain_file(const SymbolIndex& index, int file) {
  return path_contains(index.files[static_cast<std::size_t>(file)].file->path, "obs/runtime");
}

// Identifiers that look like calls but never are (or that the graph must not
// follow: casts and control flow).
bool call_keyword(std::string_view w) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "for",      "while",    "switch",      "catch",
      "return",   "sizeof",   "alignof",  "decltype",    "static_assert",
      "assert",   "new",      "delete",   "throw",       "operator",
      "alignas",  "defined",  "noexcept", "static_cast", "dynamic_cast",
      "const_cast", "reinterpret_cast"};
  return kKeywords.count(w) > 0;
}

}  // namespace

int enclosing_function(const SymbolIndex& index, int file, std::size_t pos) {
  int best = -1;
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    const FunctionDef& f = index.functions[i];
    if (!f.defined || f.file != file) continue;
    if (f.body_begin <= pos && pos < f.body_end) {
      if (best < 0 ||
          f.body_begin > index.functions[static_cast<std::size_t>(best)].body_begin) {
        best = static_cast<int>(i);
      }
    }
  }
  return best;
}

CallGraph build_call_graph(const SymbolIndex& index) {
  CallGraph g;
  g.calls.resize(index.functions.size());
  g.callers.resize(index.functions.size());

  for (std::size_t caller = 0; caller < index.functions.size(); ++caller) {
    const FunctionDef& f = index.functions[caller];
    if (!f.defined) continue;
    const Prepared& p = index.files[static_cast<std::size_t>(f.file)];
    const std::string_view code = p.code;
    std::set<int> seen;  // dedupe edges per caller

    for (std::size_t i = f.body_begin; i < f.body_end; ++i) {
      if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
      std::size_t end = i;
      const std::string name = read_ident(code, i, &end);
      const std::size_t after = skip_ws(code, end);
      const std::size_t name_pos = i;
      i = end - 1;  // resume after the identifier either way
      if (after >= f.body_end || code[after] != '(') continue;
      if (call_keyword(name) || std::isdigit(static_cast<unsigned char>(name[0])) != 0) {
        continue;
      }

      // Resolve to definitions, narrowing by locality: same file beats same
      // module beats anywhere. Self-edges are kept (recursion is real).
      std::vector<int> candidates = index.definitions_named(name);
      if (candidates.empty()) continue;
      auto narrow = [&](auto pred) {
        std::vector<int> kept;
        for (const int id : candidates) {
          if (pred(index.functions[static_cast<std::size_t>(id)])) kept.push_back(id);
        }
        if (!kept.empty()) candidates = std::move(kept);
      };
      narrow([&](const FunctionDef& cand) { return cand.file == f.file; });
      narrow([&](const FunctionDef& cand) {
        const std::string& m = index.modules[static_cast<std::size_t>(cand.file)];
        return !m.empty() && m == index.modules[static_cast<std::size_t>(f.file)];
      });

      const int line = line_of(p, name_pos);
      for (const int callee : candidates) {
        if (!seen.insert(callee).second) continue;
        g.calls[caller].push_back(CallSite{callee, line});
        g.callers[static_cast<std::size_t>(callee)].push_back(static_cast<int>(caller));
      }
    }
  }
  for (auto& sites : g.calls) {
    std::sort(sites.begin(), sites.end(), [](const CallSite& a, const CallSite& b) {
      return std::tie(a.line, a.callee) < std::tie(b.line, b.callee);
    });
  }
  for (auto& ids : g.callers) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return g;
}

bool is_taint_sink(const SymbolIndex& index, const FunctionDef& f) {
  static const std::set<std::string_view> kSinkNames = {
      "to_json", "to_binary", "to_prometheus", "write_chrome_json", "write_jsonl"};
  if (kSinkNames.count(f.name) > 0) return true;
  // shard_io writers: anything that pushes bytes into the merge-ordered shard
  // stream is an output boundary, whatever it is called.
  const std::string& path = index.files[static_cast<std::size_t>(f.file)].file->path;
  return path_contains(path, "shard_io") && f.name.starts_with("write");
}

std::vector<TaintSource> collect_taint_sources(const SymbolIndex& index) {
  std::vector<TaintSource> out;
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const Prepared& p = index.files[fi];
    // netsim owns the seeded sim clock; obs/runtime is the sanctioned
    // wall-clock telemetry domain (its outflow is policed structurally by
    // obs-domain-separation instead of token taint).
    const bool clock_exempt = path_contains(p.file->path, "netsim/") ||
                           path_contains(p.file->path, "obs/runtime");
    const std::string_view code = p.code;

    auto add = [&](std::size_t pos, std::string desc, std::string_view base_rule) {
      const int line = line_of(p, pos);
      if (is_allowed(p, line, kTaintRule)) return;
      if (!base_rule.empty() && is_allowed(p, line, base_rule)) return;
      out.push_back(TaintSource{static_cast<int>(fi), pos, line, std::move(desc),
                                std::string(base_rule)});
    };

    if (!clock_exempt) {
      // Wall-clock / ambient randomness: the same token set as the
      // determinism-wallclock rule, so one suppression at the origin covers
      // both the token rule and any taint path out of it.
      for (const std::string_view word :
           {std::string_view("random_device"), std::string_view("srand"),
            std::string_view("gettimeofday"), std::string_view("clock_gettime"),
            std::string_view("localtime"), std::string_view("gmtime"),
            std::string_view("mktime")}) {
        for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
             pos = find_word(code, word, pos + 1)) {
          add(pos, "'" + std::string(word) + "'", kWallclockRule);
        }
      }
      for (const std::string_view word : {std::string_view("rand"), std::string_view("time")}) {
        for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
             pos = find_word(code, word, pos + 1)) {
          const std::size_t after = skip_ws(code, pos + word.size());
          if (after >= code.size() || code[after] != '(') continue;
          const std::size_t before = prev_nonspace(code, pos);
          if (before != std::string_view::npos &&
              (code[before] == '.' ||
               (code[before] == '>' && before > 0 && code[before - 1] == '-'))) {
            continue;
          }
          add(pos, "'" + std::string(word) + "()'", kWallclockRule);
        }
      }
      for (const std::string_view clk :
           {std::string_view("system_clock"), std::string_view("steady_clock"),
            std::string_view("high_resolution_clock")}) {
        for (std::size_t pos = find_word(code, clk); pos != std::string_view::npos;
             pos = find_word(code, clk, pos + 1)) {
          std::size_t i = skip_ws(code, pos + clk.size());
          if (i + 1 < code.size() && code[i] == ':' && code[i + 1] == ':') {
            i = skip_ws(code, i + 2);
            if (word_at(code, i, "now")) add(pos, "'" + std::string(clk) + "::now()'",
                                             kWallclockRule);
          }
        }
      }
    }

    // std::this_thread::get_id(): thread identity varies run to run and with
    // the --threads split. No base token rule covers this — taint-only.
    for (std::size_t pos = find_word(code, "get_id"); pos != std::string_view::npos;
         pos = find_word(code, "get_id", pos + 1)) {
      const std::size_t before = prev_nonspace(code, pos);
      if (before == std::string_view::npos || code[before] != ':') continue;
      add(pos, "'this_thread::get_id()'", "");
    }

    // Pointer-to-integer casts: addresses differ across runs; once an address
    // becomes an integer it can silently reach keys, hashes, and output.
    for (std::size_t pos = find_word(code, "reinterpret_cast");
         pos != std::string_view::npos; pos = find_word(code, "reinterpret_cast", pos + 1)) {
      const std::size_t open = skip_ws(code, pos + 16);
      if (open >= code.size() || code[open] != '<') continue;
      const std::size_t close = match_angle(code, open);
      if (close == std::string_view::npos) continue;
      const std::string_view target = code.substr(open + 1, close - open - 2);
      if (contains_word(target, "uintptr_t") || contains_word(target, "intptr_t")) {
        add(pos, "reinterpret_cast of a pointer to an integer", "");
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const TaintSource& a, const TaintSource& b) {
    return std::tie(a.file, a.pos) < std::tie(b.file, b.pos);
  });
  return out;
}

void check_determinism_taint(const SymbolIndex& index, const CallGraph& graph,
                             const std::vector<TaintSource>& extra_sources,
                             std::vector<Diagnostic>& out) {
  std::vector<TaintSource> sources = collect_taint_sources(index);
  sources.insert(sources.end(), extra_sources.begin(), extra_sources.end());

  for (const TaintSource& src : sources) {
    const int origin = enclosing_function(index, src.file, src.pos);
    if (origin < 0) continue;  // namespace-scope token: no call path to walk

    // BFS from the origin function over caller edges to the nearest sink.
    // parent[] reconstructs the shortest origin-to-sink path.
    std::map<int, int> parent;
    parent[origin] = origin;
    std::deque<int> queue{origin};
    int sink = -1;
    while (!queue.empty() && sink < 0) {
      const int cur = queue.front();
      queue.pop_front();
      if (is_taint_sink(index, index.functions[static_cast<std::size_t>(cur)])) {
        sink = cur;
        break;
      }
      for (const int caller : graph.callers[static_cast<std::size_t>(cur)]) {
        if (parent.emplace(caller, cur).second) queue.push_back(caller);
      }
    }
    if (sink < 0) continue;  // value never reaches a serialization boundary

    // Path sink -> origin via parent[], then reverse to origin -> sink.
    std::vector<std::string> trace;
    for (int cur = sink;; cur = parent[cur]) {
      trace.push_back(index.functions[static_cast<std::size_t>(cur)].qualified());
      if (cur == parent[cur]) break;
    }
    std::reverse(trace.begin(), trace.end());

    std::string path_str;
    for (const std::string& fn : trace) {
      if (!path_str.empty()) path_str += " -> ";
      path_str += fn + "()";
    }
    const FunctionDef& origin_fn = index.functions[static_cast<std::size_t>(origin)];
    const FunctionDef& sink_fn = index.functions[static_cast<std::size_t>(sink)];
    Diagnostic d;
    d.path = index.files[static_cast<std::size_t>(src.file)].file->path;
    d.line = src.line;
    d.rule = std::string(kTaintRule);
    d.key = origin_fn.qualified() + "->" + sink_fn.qualified();
    d.trace = std::move(trace);
    d.message = "nondeterministic value (" + src.desc + ") originating in '" +
                origin_fn.qualified() + "' reaches serialization sink '" +
                sink_fn.qualified() + "' via " + path_str +
                ": run output would differ across runs or --threads splits; make the "
                "source deterministic (netsim clock / seeded RNG / sorted emission) or "
                "suppress at this line — the true origin — with a rationale";
    out.push_back(std::move(d));
  }
}

void check_obs_domain_separation(const SymbolIndex& index, const CallGraph& graph,
                                 std::vector<Diagnostic>& out) {
  for (std::size_t origin = 0; origin < index.functions.size(); ++origin) {
    const FunctionDef& origin_fn = index.functions[origin];
    if (!origin_fn.defined || !runtime_domain_file(index, origin_fn.file)) continue;

    // BFS over caller edges from the runtime-domain function to the nearest
    // deterministic sink. Sinks inside the runtime domain (the heartbeat and
    // manifest codecs) and to_prometheus (the sanctioned scrape surface) are
    // transparent: telemetry may flow through them, so the walk continues.
    std::map<int, int> parent;
    parent[static_cast<int>(origin)] = static_cast<int>(origin);
    std::deque<int> queue{static_cast<int>(origin)};
    int sink = -1;
    while (!queue.empty() && sink < 0) {
      const int cur = queue.front();
      queue.pop_front();
      const FunctionDef& fn = index.functions[static_cast<std::size_t>(cur)];
      if (cur != static_cast<int>(origin) && is_taint_sink(index, fn) &&
          !runtime_domain_file(index, fn.file) && fn.name != "to_prometheus") {
        sink = cur;
        break;
      }
      for (const int caller : graph.callers[static_cast<std::size_t>(cur)]) {
        if (parent.emplace(caller, cur).second) queue.push_back(caller);
      }
    }
    if (sink < 0) continue;

    const FunctionDef& sink_fn = index.functions[static_cast<std::size_t>(sink)];
    const Prepared& sink_file = index.files[static_cast<std::size_t>(sink_fn.file)];
    if (is_allowed(sink_file, sink_fn.line, kObsDomainRule)) continue;

    std::vector<std::string> trace;
    for (int cur = sink;; cur = parent[cur]) {
      trace.push_back(index.functions[static_cast<std::size_t>(cur)].qualified());
      if (cur == parent[cur]) break;
    }
    std::reverse(trace.begin(), trace.end());

    std::string path_str;
    for (const std::string& fn : trace) {
      if (!path_str.empty()) path_str += " -> ";
      path_str += fn + "()";
    }
    Diagnostic d;
    d.path = sink_file.file->path;
    d.line = sink_fn.line;
    d.rule = std::string(kObsDomainRule);
    d.key = origin_fn.qualified() + "->" + sink_fn.qualified();
    d.trace = std::move(trace);
    d.message = "wall-clock runtime telemetry ('" + origin_fn.qualified() +
                "', defined in the obs/runtime domain) reaches deterministic "
                "serialization sink '" + sink_fn.qualified() + "' via " + path_str +
                ": runtime counters and host-clock timings must stay out of "
                "results/trace/metrics output (byte-identity contract); route the "
                "data through heartbeat/manifest files or to_prometheus instead";
    out.push_back(std::move(d));
  }
}

}  // namespace ednsm::lint
