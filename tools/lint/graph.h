// Pass 2 of the ednsm_lint analyzer: the approximate intraproject call graph,
// plus the determinism taint dataflow that runs on top of it (pass 3's
// flagship rule).
//
// Edges are resolved by unqualified name against the symbol index, preferring
// same-file, then same-module definitions, then any definition in the scanned
// set. That is deliberately approximate — no overload resolution, no virtual
// dispatch — but it is conservative in the direction that matters: a taint
// path reported here names real functions whose bodies really contain the
// source token and the sink call.
#pragma once

#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/lint.h"

namespace ednsm::lint {

struct CallSite {
  int callee = -1;  // function id in SymbolIndex::functions
  int line = 0;     // line of the call in the caller's file
};

struct CallGraph {
  std::vector<std::vector<CallSite>> calls;  // per function id, sorted by line
  std::vector<std::vector<int>> callers;     // reverse adjacency, sorted ids
};

[[nodiscard]] CallGraph build_call_graph(const SymbolIndex& index);

// A nondeterminism source site: a token whose value differs across runs.
// `base_rule` names the token rule that also polices the site (suppressing
// the base rule at the source line suppresses taint from it too — the
// suppression lives at the true origin, once).
struct TaintSource {
  int file = -1;
  std::size_t pos = 0;
  int line = 0;
  std::string desc;       // human-readable, e.g. "system_clock::now()"
  std::string base_rule;  // "" when only the taint rule covers this token
};

// Scan the index for the built-in source tokens: wall-clock / ambient
// randomness (outside src/netsim, which owns the seeded clock),
// std::this_thread::get_id(), and pointer-to-integer reinterpret_casts.
// Sites suppressed for their base rule or for determinism-taint are dropped.
[[nodiscard]] std::vector<TaintSource> collect_taint_sources(const SymbolIndex& index);

// The determinism taint rule: for every source site, walk caller edges from
// the enclosing function; if a serialization sink (to_json / to_binary /
// to_prometheus / write_chrome_json / write_jsonl / shard_io writers) is
// reachable, report the full source-to-sink call path at the source line.
// `extra_sources` lets the driver feed in sites its own rules discovered
// (unordered-container iteration), already suppression-filtered.
void check_determinism_taint(const SymbolIndex& index, const CallGraph& graph,
                             const std::vector<TaintSource>& extra_sources,
                             std::vector<Diagnostic>& out);

// The clock-domain boundary rule (obs-domain-separation): every function
// defined in a runtime-telemetry file (path contains "obs/runtime" — the one
// place wall-clock reads are sanctioned) is a source; walking caller edges
// from it must never reach a deterministic serialization sink. to_prometheus
// is the one allowed sink (runtime gauges are exposed for scraping, outside
// the deterministic output contract); sinks defined inside the runtime
// domain itself (the heartbeat/manifest writers) are likewise fine. Reported
// at the sink's definition: the sink is the function that now depends on
// wall-clock state.
void check_obs_domain_separation(const SymbolIndex& index, const CallGraph& graph,
                                 std::vector<Diagnostic>& out);

// The innermost defined function whose body contains `pos` in `file`
// (-1 when the offset is at namespace scope). Exposed for tests.
[[nodiscard]] int enclosing_function(const SymbolIndex& index, int file, std::size_t pos);

// Whether `f` is a serialization sink for the taint rule. Exposed for tests.
[[nodiscard]] bool is_taint_sink(const SymbolIndex& index, const FunctionDef& f);

}  // namespace ednsm::lint
