#include "lint/index.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace ednsm::lint {

namespace {

// Parse `ednsm-lint: allow(a, b)` occurrences out of one comment's text and
// register them for `line` (they also cover line+1; see is_allowed).
void parse_suppressions(std::string_view comment, int line,
                        std::map<int, std::set<std::string>>& allows) {
  static constexpr std::string_view kMarker = "ednsm-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    pos += kMarker.size();
    const std::size_t open = comment.find("allow(", pos);
    if (open == std::string_view::npos) return;
    std::size_t i = open + 6;
    std::string id;
    for (; i < comment.size() && comment[i] != ')'; ++i) {
      const char c = comment[i];
      if (ident_char(c) || c == '-') {
        id.push_back(c);
      } else if (c == ',') {
        if (!id.empty()) allows[line].insert(id);
        id.clear();
      }  // whitespace: field separator noise, ignore
    }
    if (!id.empty()) allows[line].insert(id);
    pos = i;
  }
}

}  // namespace

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int line_of(const Prepared& p, std::size_t offset) {
  const auto it = std::upper_bound(p.line_starts.begin(), p.line_starts.end(), offset);
  return static_cast<int>(it - p.line_starts.begin());
}

Prepared prepare(const SourceFile& file) {
  Prepared p;
  p.file = &file;
  const std::string& src = file.content;
  p.code.assign(src.size(), ' ');
  p.code_no_comments.assign(src.size(), ' ');
  p.line_starts.push_back(0);

  enum class State { Code, LineComment, BlockComment, Str, Chr, RawStr };
  State state = State::Code;
  std::string raw_delim;     // for RawStr: the ")delim\"" terminator
  std::string comment_text;  // accumulated text of the current comment
  int comment_line = 1;
  int line = 1;

  auto finish_comment = [&] {
    parse_suppressions(comment_text, comment_line, p.allows);
    comment_text.clear();
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\n') {
      p.code[i] = '\n';
      p.code_no_comments[i] = '\n';
      ++line;
      p.line_starts.push_back(i + 1);
    }
    switch (state) {
      case State::Code:
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
          state = State::LineComment;
          comment_line = line;
          ++i;  // both slashes stay blanked
        } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
          state = State::BlockComment;
          comment_line = line;
          ++i;
        } else if (c == '"' && i >= 1 && src[i - 1] == 'R') {
          // Raw string literal R"delim( ... )delim"
          std::string delim;
          std::size_t j = i + 1;
          while (j < src.size() && src[j] != '(') delim.push_back(src[j++]);
          raw_delim = ")" + delim + "\"";
          p.code_no_comments[i] = c;
          state = State::RawStr;
        } else if (c == '"') {
          p.code_no_comments[i] = c;
          state = State::Str;
        } else if (c == '\'' && !(i >= 1 && ident_char(src[i - 1]))) {
          // A char literal, not a digit separator (1'000'000).
          p.code_no_comments[i] = c;
          state = State::Chr;
        } else if (c != '\n') {
          p.code[i] = c;
          p.code_no_comments[i] = c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          finish_comment();
          state = State::Code;
        } else {
          comment_text.push_back(c);
        }
        break;
      case State::BlockComment:
        if (c == '*' && i + 1 < src.size() && src[i + 1] == '/') {
          finish_comment();
          ++i;
          state = State::Code;
        } else {
          comment_text.push_back(c);
        }
        break;
      case State::Str:
        if (c != '\n') p.code_no_comments[i] = c;
        if (c == '\\' && i + 1 < src.size()) {
          p.code_no_comments[i + 1] = src[i + 1];
          ++i;
        } else if (c == '"') {
          state = State::Code;
        }
        break;
      case State::Chr:
        if (c != '\n') p.code_no_comments[i] = c;
        if (c == '\\' && i + 1 < src.size()) {
          p.code_no_comments[i + 1] = src[i + 1];
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        }
        break;
      case State::RawStr:
        if (c != '\n') p.code_no_comments[i] = c;
        if (c == ')' && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size() && i + k < src.size(); ++k) {
            if (src[i + k] != '\n') p.code_no_comments[i + k] = src[i + k];
          }
          i += raw_delim.size() - 1;
          state = State::Code;
        }
        break;
    }
  }
  if (state == State::LineComment || state == State::BlockComment) finish_comment();

  // Propagate suppressions downward through comment-only / blank lines, so a
  // marker anywhere in the comment block directly above a statement covers
  // the statement's first code line.
  auto line_is_blank = [&](int ln) {
    if (ln < 1 || ln > static_cast<int>(p.line_starts.size())) return false;
    const std::size_t begin = p.line_starts[static_cast<std::size_t>(ln - 1)];
    const std::size_t end = ln < static_cast<int>(p.line_starts.size())
                                ? p.line_starts[static_cast<std::size_t>(ln)]
                                : p.code.size();
    for (std::size_t i = begin; i < end; ++i) {
      if (std::isspace(static_cast<unsigned char>(p.code[i])) == 0) return false;
    }
    return true;
  };
  for (const auto& [ln, rules_at] : std::map<int, std::set<std::string>>(p.allows)) {
    int l = ln;
    while (line_is_blank(l) && l < ln + 20) ++l;
    if (l != ln) p.allows[l].insert(rules_at.begin(), rules_at.end());
  }
  return p;
}

bool is_allowed(const Prepared& p, int line, std::string_view rule) {
  for (const int l : {line, line - 1}) {
    const auto it = p.allows.find(l);
    if (it != p.allows.end() && it->second.count(std::string(rule)) > 0) return true;
  }
  return false;
}

bool word_at(std::string_view code, std::size_t pos, std::string_view word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= code.size() || !ident_char(code[end]);
}

std::size_t find_word(std::string_view code, std::string_view word, std::size_t from) {
  for (std::size_t pos = code.find(word, from); pos != std::string_view::npos;
       pos = code.find(word, pos + 1)) {
    if (word_at(code, pos, word)) return pos;
  }
  return std::string_view::npos;
}

bool contains_word(std::string_view code, std::string_view word) {
  return find_word(code, word) != std::string_view::npos;
}

std::size_t skip_ws(std::string_view code, std::size_t pos) {
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos])) != 0) ++pos;
  return pos;
}

std::size_t prev_nonspace(std::string_view code, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
  }
  return std::string_view::npos;
}

std::string read_ident(std::string_view code, std::size_t pos, std::size_t* end) {
  std::size_t i = pos;
  std::string out;
  while (i < code.size() && ident_char(code[i])) out.push_back(code[i++]);
  if (end != nullptr) *end = i;
  return out;
}

std::size_t match_angle(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

std::size_t match_block(std::string_view code, std::size_t open, char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_ch) ++depth;
    if (code[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

bool is_header(std::string_view path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

bool path_contains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

std::string module_of(std::string_view path) {
  std::size_t pos = 0;
  while ((pos = path.find("src/", pos)) != std::string_view::npos) {
    if (pos == 0 || path[pos - 1] == '/') {
      const std::size_t begin = pos + 4;
      const std::size_t slash = path.find('/', begin);
      if (slash == std::string_view::npos) return "";  // a file directly in src/
      return std::string(path.substr(begin, slash - begin));
    }
    ++pos;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Struct collection (fields + codec markers), moved from the old scanner.
// ---------------------------------------------------------------------------

namespace {

// Parse the public data members out of a struct body. Walks depth-1
// statements; `{...}` groups at depth 1 are skipped (function bodies and
// brace initializers alike) and the statement is kept only when a ';'
// terminates it afterwards.
void parse_fields(const Prepared& p, StructDef& s) {
  const std::string_view code = p.code;
  bool collecting = true;  // struct scope starts public
  std::string chunk;
  std::size_t chunk_begin = s.body_begin;
  bool saw_braces = false;

  for (std::size_t i = s.body_begin; i < s.body_end; ++i) {
    const char c = code[i];
    if (c == '{' || c == '(') {
      // Skip nested blocks wholesale. Parens are kept in the chunk as a
      // marker (function detection) but their contents are dropped.
      const char close = c == '{' ? '}' : ')';
      const std::size_t end = match_block(code, i, c, close);
      if (end == std::string_view::npos || end > s.body_end) break;
      if (c == '(') {
        chunk += "()";
      } else {
        saw_braces = true;
      }
      i = end - 1;
      continue;
    }
    if (c == ':' && (i + 1 >= code.size() || code[i + 1] != ':') &&
        (i == 0 || code[i - 1] != ':')) {
      // Access specifier boundary: the chunk so far is `public` / `private` /
      // `protected` (or a bit-field / base clause, which we don't have).
      std::string label = chunk;
      label.erase(
          std::remove_if(label.begin(), label.end(),
                         [](char ch) { return std::isspace(static_cast<unsigned char>(ch)) != 0; }),
          label.end());
      if (label == "public") collecting = true;
      if (label == "private" || label == "protected") collecting = false;
      chunk.clear();
      chunk_begin = i + 1;
      saw_braces = false;
      continue;
    }
    if (c == ';') {
      std::string stmt = chunk;
      chunk.clear();
      const std::size_t stmt_begin = chunk_begin;
      chunk_begin = i + 1;
      const bool braced = saw_braces;
      saw_braces = false;
      if (!collecting) continue;
      // Strip attributes like [[nodiscard]].
      for (std::size_t a = stmt.find("[["); a != std::string::npos; a = stmt.find("[[")) {
        const std::size_t b = stmt.find("]]", a);
        if (b == std::string::npos) break;
        stmt.erase(a, b - a + 2);
      }
      const std::size_t first = stmt.find_first_not_of(" \t\n");
      if (first == std::string::npos) continue;
      stmt = stmt.substr(first);
      if (stmt.starts_with("using ") || stmt.starts_with("static ") ||
          stmt.starts_with("friend ") || stmt.starts_with("typedef ") ||
          stmt.starts_with("template") || stmt.starts_with("enum ") ||
          stmt.starts_with("struct ") || stmt.starts_with("class ")) {
        continue;
      }
      // A '(' before any '=' marks a function declaration, not a field
      // (initializers may legitimately call functions after the '=').
      const std::size_t paren = stmt.find('(');
      const std::size_t eq = stmt.find('=');
      if (paren != std::string::npos && (eq == std::string::npos || paren < eq)) continue;
      if (stmt.find("operator") != std::string::npos) continue;
      // Field name: identifier before '=' when present, else the last
      // identifier (brace initializers were stripped above, so `T name{0}`
      // reduces to `T name`).
      std::string_view head(stmt);
      if (eq != std::string::npos) head = head.substr(0, eq);
      std::size_t end = head.size();
      while (end > 0 && !ident_char(head[end - 1])) --end;
      std::size_t begin = end;
      while (begin > 0 && ident_char(head[begin - 1])) --begin;
      if (begin == end) continue;
      std::string name(head.substr(begin, end - begin));
      if (name.empty() || (std::isdigit(static_cast<unsigned char>(name[0])) != 0)) continue;
      (void)braced;
      // Anchor the field's line at its first non-whitespace character, not at
      // the previous statement's terminator (blanked comments in between are
      // whitespace by now).
      const std::size_t anchor = std::min(skip_ws(code, stmt_begin), i);
      s.fields.push_back(Field{std::move(name), stmt, line_of(p, anchor)});
    } else {
      chunk.push_back(c);
    }
  }
}

void collect_structs(SymbolIndex& index) {
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const Prepared& p = index.files[fi];
    const std::string_view code = p.code;
    for (std::size_t pos = find_word(code, "struct"); pos != std::string_view::npos;
         pos = find_word(code, "struct", pos + 1)) {
      std::size_t after = skip_ws(code, pos + 6);
      std::size_t name_end = after;
      const std::string name = read_ident(code, after, &name_end);
      if (name.empty()) continue;
      // Scan forward over `final` / base clause to '{'; a ';' first means a
      // forward declaration.
      std::size_t brace = name_end;
      while (brace < code.size() && code[brace] != '{' && code[brace] != ';') ++brace;
      if (brace >= code.size() || code[brace] != '{') continue;
      const std::size_t end = match_block(code, brace, '{', '}');
      if (end == std::string_view::npos) continue;
      StructDef s;
      s.name = name;
      s.where = &p;
      s.file = static_cast<int>(fi);
      s.line = line_of(p, pos);
      s.body_begin = brace + 1;
      s.body_end = end - 1;
      const std::string_view body = code.substr(s.body_begin, s.body_end - s.body_begin);
      s.has_to_json = contains_word(body, "to_json");
      s.has_from_json = contains_word(body, "from_json");
      s.has_phase_sum = contains_word(body, "phase_sum");
      if (s.has_to_json || s.has_from_json || s.has_phase_sum ||
          contains_word(body, "SimDuration")) {
        parse_fields(p, s);
      }
      index.structs.push_back(std::move(s));
    }
  }
}

// ---------------------------------------------------------------------------
// Function collection. Token heuristic: an identifier followed by a balanced
// parameter list whose trailer (specifiers, ctor init list, trailing return)
// ends in '{' is a definition; one ending in ';' or '= default/delete/0;' is
// a declaration when a type-ish token precedes the name (or it is
// class-qualified / inside a class body). Lambdas, control keywords, and
// member-access calls are filtered out.
// ---------------------------------------------------------------------------

bool is_control_keyword(std::string_view w) {
  static const std::set<std::string_view> kKeywords = {
      "if",     "for",     "while",    "switch",        "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "assert", "new",
      "delete", "throw",   "operator", "alignas",       "defined"};
  return kKeywords.count(w) > 0;
}

struct NamespaceBlock {
  std::string name;  // may be "a::b" for compound declarations
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<NamespaceBlock> collect_namespaces(const Prepared& p) {
  std::vector<NamespaceBlock> out;
  const std::string_view code = p.code;
  for (std::size_t pos = find_word(code, "namespace"); pos != std::string_view::npos;
       pos = find_word(code, "namespace", pos + 1)) {
    std::size_t i = skip_ws(code, pos + 9);
    std::string name;
    // `namespace a::b {`, `namespace {`, or `namespace x = y;` (skipped).
    while (i < code.size()) {
      std::size_t end = i;
      const std::string part = read_ident(code, i, &end);
      if (!part.empty()) {
        name += name.empty() ? part : "::" + part;
        i = skip_ws(code, end);
      }
      if (i < code.size() && code[i] == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        i = skip_ws(code, i + 2);
        continue;
      }
      break;
    }
    if (i >= code.size() || code[i] != '{') continue;  // alias or using-directive
    const std::size_t end = match_block(code, i, '{', '}');
    if (end == std::string_view::npos) continue;
    out.push_back(NamespaceBlock{std::move(name), i + 1, end - 1});
  }
  return out;
}

std::string namespace_at(const std::vector<NamespaceBlock>& blocks, std::size_t offset) {
  std::string ns;
  for (const NamespaceBlock& b : blocks) {
    if (b.begin <= offset && offset < b.end && !b.name.empty()) {
      ns += ns.empty() ? b.name : "::" + b.name;
    }
  }
  return ns;
}

// Skip a constructor initializer list starting at the ':' at `pos`; returns
// the offset of the body '{' (or npos when the shape is not an init list).
std::size_t skip_init_list(std::string_view code, std::size_t pos) {
  std::size_t i = skip_ws(code, pos + 1);
  while (i < code.size()) {
    // Entry: qualified, possibly templated name, then (...) or {...}.
    bool saw_name = false;
    while (i < code.size()) {
      std::size_t end = i;
      if (read_ident(code, i, &end).empty()) break;
      saw_name = true;
      i = skip_ws(code, end);
      if (i + 1 < code.size() && code[i] == ':' && code[i + 1] == ':') {
        i = skip_ws(code, i + 2);
        continue;
      }
      if (i < code.size() && code[i] == '<') {
        const std::size_t close = match_angle(code, i);
        if (close == std::string_view::npos) return std::string_view::npos;
        i = skip_ws(code, close);
      }
      break;
    }
    if (!saw_name) return std::string_view::npos;
    if (i >= code.size() || (code[i] != '(' && code[i] != '{')) return std::string_view::npos;
    const std::size_t close =
        match_block(code, i, code[i], code[i] == '(' ? ')' : '}');
    if (close == std::string_view::npos) return std::string_view::npos;
    i = skip_ws(code, close);
    if (i < code.size() && code[i] == ',') {
      i = skip_ws(code, i + 1);
      continue;
    }
    return i < code.size() && code[i] == '{' ? i : std::string_view::npos;
  }
  return std::string_view::npos;
}

void collect_functions(SymbolIndex& index) {
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const Prepared& p = index.files[fi];
    const std::string_view code = p.code;
    const std::vector<NamespaceBlock> namespaces = collect_namespaces(p);

    for (std::size_t open = code.find('('); open != std::string_view::npos;
         open = code.find('(', open + 1)) {
      // Identifier directly before the '('.
      const std::size_t last = prev_nonspace(code, open);
      if (last == std::string_view::npos || !ident_char(code[last])) continue;
      std::size_t name_begin = last;
      while (name_begin > 0 && ident_char(code[name_begin - 1])) --name_begin;
      const std::string name(code.substr(name_begin, last - name_begin + 1));
      if (name.empty() || is_control_keyword(name) ||
          std::isdigit(static_cast<unsigned char>(name[0])) != 0) {
        continue;
      }

      // Member-access calls (`x.f(`, `p->f(`) are never definitions or
      // declarations; destructors (`~F(`) are uninteresting to the graph.
      std::size_t before = prev_nonspace(code, name_begin);
      if (before != std::string_view::npos &&
          (code[before] == '.' || code[before] == '~' ||
           (code[before] == '>' && before > 0 && code[before - 1] == '-'))) {
        continue;
      }

      // Class qualifier: `Cls::name(`. Walk the `::`-chain backwards; the
      // component directly before the name is the class (earlier components
      // are namespaces — good enough for an approximate index).
      std::string class_name;
      bool qualified = false;
      if (before != std::string_view::npos && code[before] == ':' && before >= 1 &&
          code[before - 1] == ':') {
        qualified = true;
        const std::size_t q_last = prev_nonspace(code, before - 1);
        if (q_last != std::string_view::npos && ident_char(code[q_last])) {
          std::size_t q_begin = q_last;
          while (q_begin > 0 && ident_char(code[q_begin - 1])) --q_begin;
          class_name = std::string(code.substr(q_begin, q_last - q_begin + 1));
          before = prev_nonspace(code, q_begin);
        } else if (q_last != std::string_view::npos && code[q_last] == '>') {
          continue;  // templated qualifier — skip rather than misattribute
        }
      }

      const std::size_t params_end = match_block(code, open, '(', ')');
      if (params_end == std::string_view::npos) continue;

      // Trailer: specifiers, ctor init list, trailing return type.
      std::size_t t = skip_ws(code, params_end);
      bool gave_up = false;
      while (!gave_up && t < code.size()) {
        if (word_at(code, t, "const") || word_at(code, t, "final") ||
            word_at(code, t, "override") || word_at(code, t, "mutable") ||
            word_at(code, t, "noexcept") || word_at(code, t, "try")) {
          std::size_t adv = t;
          while (adv < code.size() && ident_char(code[adv])) ++adv;
          t = skip_ws(code, adv);
          if (t < code.size() && code[t] == '(') {  // noexcept(...)
            const std::size_t c2 = match_block(code, t, '(', ')');
            if (c2 == std::string_view::npos) {
              gave_up = true;
              break;
            }
            t = skip_ws(code, c2);
          }
          continue;
        }
        if (t + 1 < code.size() && code[t] == '-' && code[t + 1] == '>') {
          // Trailing return type: scan to the body/terminator at depth 0.
          std::size_t i = t + 2;
          int depth = 0;
          while (i < code.size()) {
            const char c = code[i];
            if (c == '(' || c == '[' || c == '<') ++depth;
            if (c == ')' || c == ']' || c == '>') --depth;
            if (depth == 0 && (c == '{' || c == ';' || c == '=')) break;
            ++i;
          }
          t = i;
          continue;
        }
        break;
      }
      if (gave_up || t >= code.size()) continue;
      if (code[t] == ':' && (t + 1 >= code.size() || code[t + 1] != ':')) {
        const std::size_t body = skip_init_list(code, t);
        if (body == std::string_view::npos) continue;
        t = body;
      }

      FunctionDef f;
      f.name = name;
      f.class_name = class_name;
      f.file = static_cast<int>(fi);
      f.line = line_of(p, name_begin);
      f.ns = namespace_at(namespaces, name_begin);

      if (code[t] == '{') {
        const std::size_t body_end = match_block(code, t, '{', '}');
        if (body_end == std::string_view::npos) continue;
        f.defined = true;
        f.body_begin = t + 1;
        f.body_end = body_end - 1;
      } else if (code[t] == ';' || code[t] == '=') {
        // Declaration (or `= default/delete/0`). Require a type-ish token
        // before the declaration — or a class qualifier / class-body scope —
        // so plain call statements `foo(x);` don't register as declarations.
        bool type_before =
            before != std::string_view::npos &&
            (ident_char(code[before]) || code[before] == '>' || code[before] == '*' ||
             code[before] == '&' || code[before] == ']');
        if (before != std::string_view::npos && ident_char(code[before])) {
          std::size_t tb = before;
          while (tb > 0 && ident_char(code[tb - 1])) --tb;
          const std::string_view tok = code.substr(tb, before - tb + 1);
          if (tok == "return" || tok == "co_return" || tok == "case" || tok == "goto") {
            type_before = false;
          }
        }
        bool in_class = qualified && !class_name.empty();
        if (!in_class) {
          for (const StructDef& s : index.structs) {
            if (s.file == static_cast<int>(fi) && s.body_begin <= name_begin &&
                name_begin < s.body_end) {
              in_class = true;
              break;
            }
          }
        }
        if (!type_before && !in_class) continue;
        f.defined = false;
      } else {
        continue;
      }

      // Inline method: adopt the innermost enclosing struct as the class.
      if (f.class_name.empty()) {
        const StructDef* innermost = nullptr;
        for (const StructDef& s : index.structs) {
          if (s.file != static_cast<int>(fi)) continue;
          if (s.body_begin <= name_begin && name_begin < s.body_end) {
            if (innermost == nullptr || s.body_begin > innermost->body_begin) innermost = &s;
          }
        }
        if (innermost != nullptr) f.class_name = innermost->name;
      }

      index.functions.push_back(std::move(f));
    }
  }

  // Definitions before declarations, then stable (file, line) order — the
  // call graph and taint pass resolve names to the first matching entries.
  std::stable_sort(index.functions.begin(), index.functions.end(),
                   [](const FunctionDef& a, const FunctionDef& b) {
                     if (a.defined != b.defined) return a.defined;
                     return std::tie(a.file, a.line) < std::tie(b.file, b.line);
                   });
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    index.by_name.emplace(index.functions[i].name, static_cast<int>(i));
  }
}

void collect_includes(SymbolIndex& index) {
  index.includes.resize(index.files.size());
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const Prepared& p = index.files[fi];
    const std::string_view code = p.code_no_comments;  // include targets are strings
    for (std::size_t pos = code.find("#include"); pos != std::string_view::npos;
         pos = code.find("#include", pos + 1)) {
      // Directive must be the first token on its line.
      const int line = line_of(p, pos);
      const std::size_t line_begin = p.line_starts[static_cast<std::size_t>(line - 1)];
      if (skip_ws(code, line_begin) != pos &&
          !(code[skip_ws(code, line_begin)] == '#' &&
            skip_ws(code, skip_ws(code, line_begin) + 1) == pos + 1)) {
        // Tolerate `#  include`; anything else on the line is not a directive.
        if (code.substr(line_begin, pos - line_begin).find_first_not_of(" \t#") !=
            std::string_view::npos) {
          continue;
        }
      }
      std::size_t i = skip_ws(code, pos + 8);
      if (i >= code.size() || code[i] != '"') continue;  // system includes ignored
      const std::size_t close = code.find('"', i + 1);
      if (close == std::string_view::npos) continue;
      index.includes[fi].push_back(
          IncludeEdge{line, std::string(code.substr(i + 1, close - i - 1))});
    }
  }
}

}  // namespace

std::vector<int> SymbolIndex::definitions_named(std::string_view name) const {
  std::vector<int> out;
  const auto [lo, hi] = by_name.equal_range(std::string(name));
  for (auto it = lo; it != hi; ++it) {
    if (functions[static_cast<std::size_t>(it->second)].defined) out.push_back(it->second);
  }
  return out;
}

SymbolIndex build_index(const std::vector<SourceFile>& files) {
  SymbolIndex index;
  index.files.reserve(files.size());
  index.modules.reserve(files.size());
  for (const SourceFile& f : files) {
    index.files.push_back(prepare(f));
    index.modules.push_back(module_of(f.path));
  }
  collect_structs(index);
  collect_functions(index);
  collect_includes(index);
  return index;
}

std::optional<std::string> method_body(const SymbolIndex& index, const StructDef& s,
                                       std::string_view method) {
  // Indexed lookup first: an out-of-line `Struct::method` definition.
  for (const int id : index.definitions_named(method)) {
    const FunctionDef& f = index.functions[static_cast<std::size_t>(id)];
    if (f.class_name != s.name) continue;
    const Prepared& p = index.files[static_cast<std::size_t>(f.file)];
    // Out-of-line definitions live outside the struct body; inline ones are
    // handled below (the indexed body range works for both, but prefer the
    // explicit inline scan for files where the struct was re-declared).
    return std::string(
        p.code_no_comments.substr(f.body_begin - 1, f.body_end + 1 - (f.body_begin - 1)));
  }
  // Inline definition inside the struct body (fallback for shapes the
  // function pass did not model).
  const std::string_view code = s.where->code;
  for (std::size_t pos = find_word(code, method, s.body_begin);
       pos != std::string_view::npos && pos < s.body_end;
       pos = find_word(code, method, pos + 1)) {
    std::size_t i = skip_ws(code, pos + method.size());
    if (i >= code.size() || code[i] != '(') continue;
    i = match_block(code, i, '(', ')');
    if (i == std::string_view::npos) continue;
    while (i < s.body_end && code[i] != '{' && code[i] != ';') ++i;
    if (i >= s.body_end || code[i] != '{') continue;
    const std::size_t end = match_block(code, i, '{', '}');
    if (end == std::string_view::npos) continue;
    return std::string(s.where->code_no_comments.substr(i, end - i));
  }
  return std::nullopt;
}

std::string_view function_body_with_strings(const SymbolIndex& index, const FunctionDef& f) {
  if (!f.defined) return {};
  const Prepared& p = index.files[static_cast<std::size_t>(f.file)];
  return std::string_view(p.code_no_comments).substr(f.body_begin, f.body_end - f.body_begin);
}

}  // namespace ednsm::lint
