// Pass 1 of the ednsm_lint analyzer: the symbol index.
//
// The analyzer runs three passes (see DESIGN.md "Static analysis"):
//   1. index  — parse every translation unit into the lightweight model in
//               this header: blanked source text, suppression map, structs
//               and fields, function definitions/declarations, includes, and
//               module ownership (the src/<module>/ directory).
//   2. graph  — an approximate intraproject call graph over the functions
//               (tools/lint/graph.h).
//   3. rules  — token rules, codec/phase checks, the determinism taint
//               dataflow, and the module-layering rules all consume the same
//               index (tools/lint/lint.cc, graph.cc, layers.cc).
//
// Everything here is a token-level approximation, not a compiler frontend:
// good enough to resolve `Struct::method`, to pair declarations with their
// definitions, and to walk call edges by name — and cheap enough to run over
// the whole tree in well under a second.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace ednsm::lint {

// A source file handed to the analyzer. `path` is used for diagnostics and
// for path-keyed rule behavior (header-only rules key off the extension;
// the wall-clock rule exempts the netsim clock layer; layering keys off the
// src/<module>/ component), so tests may pass synthetic paths with fixture
// content.
struct SourceFile {
  std::string path;
  std::string content;
};

// Preprocessed view of one file: literals and comments blanked (offsets and
// newlines preserved) plus the suppression map parsed out of the comments.
struct Prepared {
  const SourceFile* file = nullptr;
  std::string code;                             // literals/comments blanked
  std::string code_no_comments;                 // strings kept, comments blanked
  std::vector<std::size_t> line_starts;         // byte offset of each line start
  std::map<int, std::set<std::string>> allows;  // line -> suppressed rule IDs
};

[[nodiscard]] Prepared prepare(const SourceFile& file);
[[nodiscard]] int line_of(const Prepared& p, std::size_t offset);
[[nodiscard]] bool is_allowed(const Prepared& p, int line, std::string_view rule);

// --- Token helpers over blanked code (shared by every pass). ---
[[nodiscard]] bool ident_char(char c);
[[nodiscard]] bool word_at(std::string_view code, std::size_t pos, std::string_view word);
[[nodiscard]] std::size_t find_word(std::string_view code, std::string_view word,
                                    std::size_t from = 0);
[[nodiscard]] bool contains_word(std::string_view code, std::string_view word);
[[nodiscard]] std::size_t skip_ws(std::string_view code, std::size_t pos);
[[nodiscard]] std::size_t prev_nonspace(std::string_view code, std::size_t pos);
[[nodiscard]] std::string read_ident(std::string_view code, std::size_t pos,
                                     std::size_t* end = nullptr);
[[nodiscard]] std::size_t match_angle(std::string_view code, std::size_t open);
[[nodiscard]] std::size_t match_block(std::string_view code, std::size_t open, char open_ch,
                                      char close_ch);
[[nodiscard]] bool is_header(std::string_view path);
[[nodiscard]] bool path_contains(std::string_view path, std::string_view needle);

// --- Struct model: fields + bodies, shared by codec-parity and phase-sum. ---

struct Field {
  std::string name;
  std::string decl;  // full declaration text (initializer braces stripped)
  int line = 0;
};

struct StructDef {
  std::string name;
  const Prepared* where = nullptr;
  int file = -1;               // index into SymbolIndex::files
  int line = 0;
  std::size_t body_begin = 0;  // offset just past '{'
  std::size_t body_end = 0;    // offset of '}'
  std::vector<Field> fields;   // public, non-static, non-function members
  bool has_to_json = false;
  bool has_from_json = false;
  bool has_phase_sum = false;
};

// --- Function model: the unit the call graph and taint pass operate on. ---

struct FunctionDef {
  std::string name;        // unqualified
  std::string class_name;  // enclosing struct/class ("" for free functions)
  std::string ns;          // enclosing namespace path, best-effort ("a::b")
  int file = -1;           // index into SymbolIndex::files
  int line = 0;
  bool defined = false;        // true when a body was found in the scanned set
  std::size_t body_begin = 0;  // offset just past '{' (valid when defined)
  std::size_t body_end = 0;    // offset of '}'

  [[nodiscard]] std::string qualified() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

// One `#include "..."` directive (system includes are not indexed: the
// analyzer only reasons about intraproject edges).
struct IncludeEdge {
  int line = 0;
  std::string target;  // as written, e.g. "core/spec.h"
};

struct SymbolIndex {
  std::vector<Prepared> files;  // parallel to the input file list
  std::vector<StructDef> structs;
  std::vector<FunctionDef> functions;             // definitions before declarations
  std::multimap<std::string, int> by_name;        // unqualified name -> function ids
  std::vector<std::vector<IncludeEdge>> includes; // per file
  std::vector<std::string> modules;               // per file; "" outside src/<m>/

  // All function ids named `name`, definitions only.
  [[nodiscard]] std::vector<int> definitions_named(std::string_view name) const;
};

// The module a path belongs to in the layering DAG: the directory component
// after `src/` ("src/core/spec.cc" -> "core"), or "" for files outside src/.
[[nodiscard]] std::string module_of(std::string_view path);

// Build the full index over a file set (pass 1).
[[nodiscard]] SymbolIndex build_index(const std::vector<SourceFile>& files);

// Find the body of `Struct::method` (out-of-line anywhere in the tree, or
// inline inside the struct body). Returns the body text with string literals
// intact, so JSON key names remain searchable.
[[nodiscard]] std::optional<std::string> method_body(const SymbolIndex& index, const StructDef& s,
                                                     std::string_view method);

// The function's body text with string literals intact ("" when !defined).
[[nodiscard]] std::string_view function_body_with_strings(const SymbolIndex& index,
                                                          const FunctionDef& f);

}  // namespace ednsm::lint
