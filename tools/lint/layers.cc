#include "lint/layers.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace ednsm::lint {

namespace {

constexpr std::string_view kLayering = "arch-layering";
constexpr std::string_view kIncludeCycle = "arch-include-cycle";

}  // namespace

bool LayerConfig::parse(std::string_view text, LayerConfig* out, std::string* error) {
  out->deps.clear();
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string module;
    if (!(fields >> module)) continue;  // blank / comment-only line
    if (module.back() != ':') {
      *error = "layers.conf:" + std::to_string(lineno) +
               ": expected 'module: dep dep ...', got '" + line + "'";
      return false;
    }
    module.pop_back();
    if (out->deps.count(module) > 0) {
      *error = "layers.conf:" + std::to_string(lineno) + ": module '" + module +
               "' declared twice";
      return false;
    }
    std::set<std::string>& deps = out->deps[module];
    std::string dep;
    while (fields >> dep) deps.insert(dep);
  }

  for (const auto& [module, deps] : out->deps) {
    for (const std::string& dep : deps) {
      if (out->deps.count(dep) == 0) {
        *error = "layers.conf: module '" + module + "' depends on undeclared module '" +
                 dep + "'";
        return false;
      }
      if (dep == module) {
        *error = "layers.conf: module '" + module + "' depends on itself";
        return false;
      }
    }
  }

  // The declared graph must be acyclic — otherwise "layering" constrains
  // nothing. Colors: 0 unvisited, 1 on stack, 2 done.
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> visit = [&](const std::string& m) {
    color[m] = 1;
    stack.push_back(m);
    for (const std::string& dep : out->deps.at(m)) {
      if (color[dep] == 1) {
        std::string cycle = dep;
        for (auto it = std::find(stack.begin(), stack.end(), dep); it != stack.end(); ++it) {
          if (*it != dep) cycle += " -> " + *it;
        }
        *error = "layers.conf: declared dependencies contain a cycle: " + cycle + " -> " + dep;
        return false;
      }
      if (color[dep] == 0 && !visit(dep)) return false;
    }
    stack.pop_back();
    color[m] = 2;
    return true;
  };
  for (const auto& [module, deps] : out->deps) {
    if (color[module] == 0 && !visit(module)) return false;
  }
  return true;
}

void check_layering(const SymbolIndex& index, const LayerConfig& config,
                    std::vector<Diagnostic>& out) {
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const std::string& from = index.modules[fi];
    if (from.empty()) continue;  // only src/<module>/ files carry layer obligations
    const Prepared& p = index.files[fi];
    if (config.deps.count(from) == 0) {
      out.push_back({std::string(p.file->path), 1, std::string(kLayering),
                     "module '" + from +
                         "' is not declared in layers.conf: add it (with its allowed "
                         "dependencies) so the layering DAG stays complete",
                     from + "->?",
                     {}});
      continue;
    }
    const std::set<std::string>& allowed = config.deps.at(from);
    for (const IncludeEdge& inc : index.includes[fi]) {
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;  // sibling include, same module
      const std::string to = inc.target.substr(0, slash);
      if (to == from || config.deps.count(to) == 0) continue;  // non-module prefix
      if (allowed.count(to) > 0) continue;
      out.push_back({std::string(p.file->path), inc.line, std::string(kLayering),
                     "include of \"" + inc.target + "\" creates a '" + from + "' -> '" + to +
                         "' edge that layers.conf does not allow: depend downward only "
                         "(declare the edge in tools/lint/layers.conf if it is a "
                         "deliberate architecture change)",
                     from + "->" + to,
                     {}});
    }
  }
}

void check_include_cycles(const SymbolIndex& index, std::vector<Diagnostic>& out) {
  // Resolve quoted includes to scanned files by path suffix.
  const std::size_t n = index.files.size();
  std::vector<std::vector<int>> edges(n);
  for (std::size_t fi = 0; fi < n; ++fi) {
    for (const IncludeEdge& inc : index.includes[fi]) {
      for (std::size_t ti = 0; ti < n; ++ti) {
        const std::string& path = index.files[ti].file->path;
        if (path == inc.target ||
            (path.size() > inc.target.size() &&
             path.ends_with(inc.target) &&
             path[path.size() - inc.target.size() - 1] == '/')) {
          edges[fi].push_back(static_cast<int>(ti));
        }
      }
    }
    std::sort(edges[fi].begin(), edges[fi].end());
    edges[fi].erase(std::unique(edges[fi].begin(), edges[fi].end()), edges[fi].end());
  }

  // Iterative-enough DFS (the tree is small; recursion depth = include depth).
  std::vector<int> color(n, 0);
  std::vector<int> stack;
  std::set<std::string> reported;  // canonical cycle keys, to report each once
  std::function<void(int)> visit = [&](int v) {
    color[static_cast<std::size_t>(v)] = 1;
    stack.push_back(v);
    for (const int w : edges[static_cast<std::size_t>(v)]) {
      if (color[static_cast<std::size_t>(w)] == 1) {
        // Extract the cycle w -> ... -> v -> w from the stack.
        std::vector<int> cycle(std::find(stack.begin(), stack.end(), w), stack.end());
        // Canonicalize: rotate so the smallest path comes first.
        auto smallest = std::min_element(
            cycle.begin(), cycle.end(), [&](int a, int b) {
              return index.files[static_cast<std::size_t>(a)].file->path <
                     index.files[static_cast<std::size_t>(b)].file->path;
            });
        std::rotate(cycle.begin(), smallest, cycle.end());
        std::string key;
        std::string pretty;
        for (const int id : cycle) {
          const std::string& path = index.files[static_cast<std::size_t>(id)].file->path;
          key += path + ";";
          pretty += path + " -> ";
        }
        pretty += index.files[static_cast<std::size_t>(cycle.front())].file->path;
        if (!reported.insert(key).second) continue;
        const int anchor = cycle.front();
        out.push_back({index.files[static_cast<std::size_t>(anchor)].file->path, 1,
                       std::string(kIncludeCycle),
                       "include cycle: " + pretty +
                           ": headers in a cycle cannot be layered and break "
                           "independent compilation; invert one edge or split the "
                           "shared declarations into a lower header",
                       key,
                       {}});
      } else if (color[static_cast<std::size_t>(w)] == 0) {
        visit(w);
      }
    }
    stack.pop_back();
    color[static_cast<std::size_t>(v)] = 2;
  };
  for (std::size_t v = 0; v < n; ++v) {
    if (color[v] == 0) visit(static_cast<int>(v));
  }
}

}  // namespace ednsm::lint
