// Module-layering enforcement for src/: a declared dependency DAG
// (tools/lint/layers.conf) that every `#include "module/..."` edge must obey,
// plus file-level include-cycle detection (which needs no configuration).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/lint.h"

namespace ednsm::lint {

// Parsed layers.conf: one line per module, `module: dep dep ...` (empty dep
// list allowed: `util:`), `#` comments, blank lines ignored. The declared
// graph itself must be a DAG — a cycle in the declaration is a config error,
// not a finding.
struct LayerConfig {
  std::map<std::string, std::set<std::string>> deps;

  // Parse and validate. Returns false and sets *error on malformed lines,
  // deps on undeclared modules, or a cycle in the declared graph.
  [[nodiscard]] static bool parse(std::string_view text, LayerConfig* out, std::string* error);
};

// arch-layering: every include from src/<from>/ into src/<to>/ must have
// `to` in deps[from]. Files in modules absent from the config are flagged
// too (new modules must be declared). Diagnostics carry key "from->to".
void check_layering(const SymbolIndex& index, const LayerConfig& config,
                    std::vector<Diagnostic>& out);

// arch-include-cycle: resolve quoted includes against the scanned file set
// (by path suffix) and reject any cycle in the file-level include graph.
// Each cycle is reported once, anchored at its lexicographically smallest
// path, with the full cycle in the message; key is the joined cycle.
void check_include_cycles(const SymbolIndex& index, std::vector<Diagnostic>& out);

}  // namespace ednsm::lint
