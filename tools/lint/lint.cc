#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>

namespace ednsm::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule IDs. These are the stable, user-facing names used in diagnostics and
// in `// ednsm-lint: allow(...)` suppressions.
// ---------------------------------------------------------------------------

constexpr std::string_view kUnorderedIter = "determinism-unordered-iter";
constexpr std::string_view kWallclock = "determinism-wallclock";
constexpr std::string_view kPointerKey = "determinism-pointer-key";
constexpr std::string_view kCodecParity = "codec-parity";
constexpr std::string_view kPhaseSum = "phase-sum";
constexpr std::string_view kPragmaOnce = "hygiene-pragma-once";
constexpr std::string_view kUsingNamespace = "hygiene-using-namespace";
constexpr std::string_view kNodiscardResult = "hygiene-nodiscard-result";
constexpr std::string_view kObsSpanBalance = "obs-span-balance";
constexpr std::string_view kRawThread = "concurrency-raw-thread";

const std::vector<RuleInfo> kRules = {
    {kUnorderedIter,
     "iteration over an unordered container escapes its hash order into program "
     "output; sort keys at the emission point or suppress with a rationale"},
    {kWallclock,
     "wall-clock / ambient-randomness call outside netsim's seeded clock "
     "(std::rand, random_device, time(), *_clock::now) breaks run determinism"},
    {kPointerKey,
     "ordered container keyed by pointer: iteration order follows allocation "
     "addresses; use an unordered (hashed) container for point access"},
    {kCodecParity,
     "every public field of a struct with to_json/from_json must be referenced "
     "by both the writer and the reader (round-trip completeness)"},
    {kPhaseSum,
     "every SimDuration phase member of a timing struct must be wired through "
     "phase_sum() (additive phase-timing discipline)"},
    {kPragmaOnce, "header lacks #pragma once (or a classic include guard)"},
    {kUsingNamespace, "using namespace at header scope pollutes every includer"},
    {kNodiscardResult,
     "function declared to return Result<...> without [[nodiscard]]: dropped "
     "errors vanish silently"},
    {kObsSpanBalance,
     "manual Tracer begin_span/end_span call outside src/obs: hand-paired "
     "spans leak on early return or exception; use the OBS_SPAN RAII macro"},
    {kRawThread,
     "raw std::thread/std::jthread outside the pipeline engine "
     "(core/parallel_campaign.cc) and src/util: ad-hoc threads bypass the "
     "staged pipeline's shard determinism and join/error discipline; route "
     "work through run_pipeline()"},
};

// ---------------------------------------------------------------------------
// Preprocessing: blank comments and string/char literals (preserving byte
// offsets and newlines) and collect suppression annotations.
// ---------------------------------------------------------------------------

struct Prepared {
  const SourceFile* file = nullptr;
  std::string code;                            // literals/comments blanked
  std::string code_no_comments;                // strings kept, comments blanked
  std::vector<std::size_t> line_starts;        // byte offset of each line start
  std::map<int, std::set<std::string>> allows; // line -> suppressed rule IDs
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int line_of(const Prepared& p, std::size_t offset) {
  const auto it = std::upper_bound(p.line_starts.begin(), p.line_starts.end(), offset);
  return static_cast<int>(it - p.line_starts.begin());
}

// Parse `ednsm-lint: allow(a, b)` occurrences out of one comment's text and
// register them for `line` (they also cover line+1; see is_allowed).
void parse_suppressions(std::string_view comment, int line,
                        std::map<int, std::set<std::string>>& allows) {
  static constexpr std::string_view kMarker = "ednsm-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    pos += kMarker.size();
    const std::size_t open = comment.find("allow(", pos);
    if (open == std::string_view::npos) return;
    std::size_t i = open + 6;
    std::string id;
    for (; i < comment.size() && comment[i] != ')'; ++i) {
      const char c = comment[i];
      if (ident_char(c) || c == '-') {
        id.push_back(c);
      } else if (c == ',') {
        if (!id.empty()) allows[line].insert(id);
        id.clear();
      }  // whitespace: field separator noise, ignore
    }
    if (!id.empty()) allows[line].insert(id);
    pos = i;
  }
}

Prepared prepare(const SourceFile& file) {
  Prepared p;
  p.file = &file;
  const std::string& src = file.content;
  p.code.assign(src.size(), ' ');
  p.code_no_comments.assign(src.size(), ' ');
  p.line_starts.push_back(0);

  enum class State { Code, LineComment, BlockComment, Str, Chr, RawStr };
  State state = State::Code;
  std::string raw_delim;        // for RawStr: the ")delim\"" terminator
  std::string comment_text;     // accumulated text of the current comment
  int comment_line = 1;
  int line = 1;

  auto finish_comment = [&] {
    parse_suppressions(comment_text, comment_line, p.allows);
    comment_text.clear();
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\n') {
      p.code[i] = '\n';
      p.code_no_comments[i] = '\n';
      ++line;
      p.line_starts.push_back(i + 1);
    }
    switch (state) {
      case State::Code:
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
          state = State::LineComment;
          comment_line = line;
          ++i;  // both slashes stay blanked
        } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
          state = State::BlockComment;
          comment_line = line;
          ++i;
        } else if (c == '"' && i >= 1 && src[i - 1] == 'R') {
          // Raw string literal R"delim( ... )delim"
          std::string delim;
          std::size_t j = i + 1;
          while (j < src.size() && src[j] != '(') delim.push_back(src[j++]);
          raw_delim = ")" + delim + "\"";
          p.code_no_comments[i] = c;
          state = State::RawStr;
        } else if (c == '"') {
          p.code_no_comments[i] = c;
          state = State::Str;
        } else if (c == '\'' && !(i >= 1 && ident_char(src[i - 1]))) {
          // A char literal, not a digit separator (1'000'000).
          p.code_no_comments[i] = c;
          state = State::Chr;
        } else if (c != '\n') {
          p.code[i] = c;
          p.code_no_comments[i] = c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          finish_comment();
          state = State::Code;
        } else {
          comment_text.push_back(c);
        }
        break;
      case State::BlockComment:
        if (c == '*' && i + 1 < src.size() && src[i + 1] == '/') {
          finish_comment();
          ++i;
          state = State::Code;
        } else {
          comment_text.push_back(c);
        }
        break;
      case State::Str:
        if (c != '\n') p.code_no_comments[i] = c;
        if (c == '\\' && i + 1 < src.size()) {
          p.code_no_comments[i + 1] = src[i + 1];
          ++i;
        } else if (c == '"') {
          state = State::Code;
        }
        break;
      case State::Chr:
        if (c != '\n') p.code_no_comments[i] = c;
        if (c == '\\' && i + 1 < src.size()) {
          p.code_no_comments[i + 1] = src[i + 1];
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        }
        break;
      case State::RawStr:
        if (c != '\n') p.code_no_comments[i] = c;
        if (c == ')' && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size() && i + k < src.size(); ++k) {
            if (src[i + k] != '\n') p.code_no_comments[i + k] = src[i + k];
          }
          i += raw_delim.size() - 1;
          state = State::Code;
        }
        break;
    }
  }
  if (state == State::LineComment || state == State::BlockComment) finish_comment();

  // Propagate suppressions downward through comment-only / blank lines, so a
  // marker anywhere in the comment block directly above a statement covers
  // the statement's first code line.
  auto line_is_blank = [&](int ln) {
    if (ln < 1 || ln > static_cast<int>(p.line_starts.size())) return false;
    const std::size_t begin = p.line_starts[static_cast<std::size_t>(ln - 1)];
    const std::size_t end = ln < static_cast<int>(p.line_starts.size())
                                ? p.line_starts[static_cast<std::size_t>(ln)]
                                : p.code.size();
    for (std::size_t i = begin; i < end; ++i) {
      if (std::isspace(static_cast<unsigned char>(p.code[i])) == 0) return false;
    }
    return true;
  };
  for (const auto& [ln, rules_at] : std::map<int, std::set<std::string>>(p.allows)) {
    int l = ln;
    while (line_is_blank(l) && l < ln + 20) ++l;
    if (l != ln) p.allows[l].insert(rules_at.begin(), rules_at.end());
  }
  return p;
}

bool is_allowed(const Prepared& p, int line, std::string_view rule) {
  for (const int l : {line, line - 1}) {
    const auto it = p.allows.find(l);
    if (it != p.allows.end() && it->second.count(std::string(rule)) > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token helpers over the blanked code.
// ---------------------------------------------------------------------------

bool word_at(std::string_view code, std::size_t pos, std::string_view word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= code.size() || !ident_char(code[end]);
}

std::size_t find_word(std::string_view code, std::string_view word, std::size_t from = 0) {
  for (std::size_t pos = code.find(word, from); pos != std::string_view::npos;
       pos = code.find(word, pos + 1)) {
    if (word_at(code, pos, word)) return pos;
  }
  return std::string_view::npos;
}

bool contains_word(std::string_view code, std::string_view word) {
  return find_word(code, word) != std::string_view::npos;
}

std::size_t skip_ws(std::string_view code, std::size_t pos) {
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos])) != 0) ++pos;
  return pos;
}

// Position of the last non-whitespace char before pos, or npos.
std::size_t prev_nonspace(std::string_view code, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
  }
  return std::string_view::npos;
}

std::string read_ident(std::string_view code, std::size_t pos, std::size_t* end = nullptr) {
  std::size_t i = pos;
  std::string out;
  while (i < code.size() && ident_char(code[i])) out.push_back(code[i++]);
  if (end != nullptr) *end = i;
  return out;
}

// Match a template argument list starting at the '<' at `open`; returns the
// offset just past the closing '>', or npos when this is not a template use
// (comparison operator, unbalanced). Tolerates nested <>, () and [].
std::size_t match_angle(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

// Match a brace/paren block starting at `open` (which must hold open_ch);
// returns offset just past the matching close, or npos.
std::size_t match_block(std::string_view code, std::size_t open, char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_ch) ++depth;
    if (code[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

bool is_header(std::string_view path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

bool path_contains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Struct model: fields + bodies, shared by codec-parity and phase-sum.
// ---------------------------------------------------------------------------

struct Field {
  std::string name;
  std::string decl;  // full declaration text (initializer braces stripped)
  int line = 0;
};

struct StructDef {
  std::string name;
  const Prepared* where = nullptr;
  int line = 0;
  std::size_t body_begin = 0;  // offset just past '{'
  std::size_t body_end = 0;    // offset of '}'
  std::vector<Field> fields;   // public, non-static, non-function members
  bool has_to_json = false;
  bool has_from_json = false;
  bool has_phase_sum = false;
};

// Parse the public data members out of a struct body. Walks depth-1
// statements; `{...}` groups at depth 1 are skipped (function bodies and
// brace initializers alike) and the statement is kept only when a ';'
// terminates it afterwards.
void parse_fields(const Prepared& p, StructDef& s) {
  const std::string_view code = p.code;
  bool collecting = true;  // struct scope starts public
  std::string chunk;
  std::size_t chunk_begin = s.body_begin;
  bool saw_braces = false;

  for (std::size_t i = s.body_begin; i < s.body_end; ++i) {
    const char c = code[i];
    if (c == '{' || c == '(') {
      // Skip nested blocks wholesale. Parens are kept in the chunk as a
      // marker (function detection) but their contents are dropped.
      const char close = c == '{' ? '}' : ')';
      const std::size_t end = match_block(code, i, c, close);
      if (end == std::string_view::npos || end > s.body_end) break;
      if (c == '(') {
        chunk += "()";
      } else {
        saw_braces = true;
      }
      i = end - 1;
      continue;
    }
    if (c == ':' && (i + 1 >= code.size() || code[i + 1] != ':') &&
        (i == 0 || code[i - 1] != ':')) {
      // Access specifier boundary: the chunk so far is `public` / `private` /
      // `protected` (or a bit-field / base clause, which we don't have).
      std::string label = chunk;
      label.erase(std::remove_if(label.begin(), label.end(),
                                 [](char ch) { return std::isspace(static_cast<unsigned char>(ch)) != 0; }),
                  label.end());
      if (label == "public") collecting = true;
      if (label == "private" || label == "protected") collecting = false;
      chunk.clear();
      chunk_begin = i + 1;
      saw_braces = false;
      continue;
    }
    if (c == ';') {
      std::string stmt = chunk;
      chunk.clear();
      const std::size_t stmt_begin = chunk_begin;
      chunk_begin = i + 1;
      const bool braced = saw_braces;
      saw_braces = false;
      if (!collecting) continue;
      // Strip attributes like [[nodiscard]].
      for (std::size_t a = stmt.find("[["); a != std::string::npos; a = stmt.find("[[")) {
        const std::size_t b = stmt.find("]]", a);
        if (b == std::string::npos) break;
        stmt.erase(a, b - a + 2);
      }
      const std::size_t first = stmt.find_first_not_of(" \t\n");
      if (first == std::string::npos) continue;
      stmt = stmt.substr(first);
      if (stmt.starts_with("using ") || stmt.starts_with("static ") ||
          stmt.starts_with("friend ") || stmt.starts_with("typedef ") ||
          stmt.starts_with("template") || stmt.starts_with("enum ") ||
          stmt.starts_with("struct ") || stmt.starts_with("class ")) {
        continue;
      }
      // A '(' before any '=' marks a function declaration, not a field
      // (initializers may legitimately call functions after the '=').
      const std::size_t paren = stmt.find('(');
      const std::size_t eq = stmt.find('=');
      if (paren != std::string::npos && (eq == std::string::npos || paren < eq)) continue;
      if (stmt.find("operator") != std::string::npos) continue;
      // Field name: identifier before '=' when present, else the last
      // identifier (brace initializers were stripped above, so `T name{0}`
      // reduces to `T name`).
      std::string_view head(stmt);
      if (eq != std::string::npos) head = head.substr(0, eq);
      std::size_t end = head.size();
      while (end > 0 && !ident_char(head[end - 1])) --end;
      std::size_t begin = end;
      while (begin > 0 && ident_char(head[begin - 1])) --begin;
      if (begin == end) continue;
      std::string name(head.substr(begin, end - begin));
      if (name.empty() || (std::isdigit(static_cast<unsigned char>(name[0])) != 0)) continue;
      (void)braced;
      // Anchor the field's line at its first non-whitespace character, not at
      // the previous statement's terminator (blanked comments in between are
      // whitespace by now).
      const std::size_t anchor = std::min(skip_ws(code, stmt_begin), i);
      s.fields.push_back(Field{std::move(name), stmt, line_of(p, anchor)});
    } else {
      chunk.push_back(c);
    }
  }
}

std::vector<StructDef> collect_structs(const std::vector<Prepared>& files) {
  std::vector<StructDef> out;
  for (const Prepared& p : files) {
    const std::string_view code = p.code;
    for (std::size_t pos = find_word(code, "struct"); pos != std::string_view::npos;
         pos = find_word(code, "struct", pos + 1)) {
      std::size_t after = skip_ws(code, pos + 6);
      std::size_t name_end = after;
      const std::string name = read_ident(code, after, &name_end);
      if (name.empty()) continue;
      // Scan forward over `final` / base clause to '{'; a ';' first means a
      // forward declaration.
      std::size_t brace = name_end;
      while (brace < code.size() && code[brace] != '{' && code[brace] != ';') ++brace;
      if (brace >= code.size() || code[brace] != '{') continue;
      const std::size_t end = match_block(code, brace, '{', '}');
      if (end == std::string_view::npos) continue;
      StructDef s;
      s.name = name;
      s.where = &p;
      s.line = line_of(p, pos);
      s.body_begin = brace + 1;
      s.body_end = end - 1;
      const std::string_view body = code.substr(s.body_begin, s.body_end - s.body_begin);
      s.has_to_json = contains_word(body, "to_json");
      s.has_from_json = contains_word(body, "from_json");
      s.has_phase_sum = contains_word(body, "phase_sum");
      if (s.has_to_json || s.has_from_json || s.has_phase_sum ||
          contains_word(body, "SimDuration")) {
        parse_fields(p, s);
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

// Find the body of `Struct::method` (out-of-line) anywhere in the tree, or
// an inline definition inside the struct body. Returns the body text with
// string literals intact (so JSON key names remain searchable).
std::optional<std::string> find_method_body(const std::vector<Prepared>& files,
                                            const StructDef& s, std::string_view method) {
  const std::string qualified = s.name + "::";
  for (const Prepared& p : files) {
    const std::string_view code = p.code;
    for (std::size_t pos = code.find(qualified); pos != std::string::npos;
         pos = code.find(qualified, pos + 1)) {
      if (pos > 0 && ident_char(code[pos - 1])) continue;
      const std::size_t m = pos + qualified.size();
      if (!word_at(code, m, method)) continue;
      // Walk to the opening brace of the definition (skipping the parameter
      // list and specifiers); a ';' first means this is just a declaration.
      std::size_t i = m + method.size();
      i = skip_ws(code, i);
      if (i >= code.size() || code[i] != '(') continue;
      i = match_block(code, i, '(', ')');
      if (i == std::string_view::npos) continue;
      while (i < code.size() && code[i] != '{' && code[i] != ';') ++i;
      if (i >= code.size() || code[i] != '{') continue;
      const std::size_t end = match_block(code, i, '{', '}');
      if (end == std::string_view::npos) continue;
      return std::string(p.code_no_comments.substr(i, end - i));
    }
  }
  // Inline definition inside the struct body.
  const std::string_view code = s.where->code;
  for (std::size_t pos = find_word(code, method, s.body_begin);
       pos != std::string_view::npos && pos < s.body_end;
       pos = find_word(code, method, pos + 1)) {
    std::size_t i = skip_ws(code, pos + method.size());
    if (i >= code.size() || code[i] != '(') continue;
    i = match_block(code, i, '(', ')');
    if (i == std::string_view::npos) continue;
    while (i < s.body_end && code[i] != '{' && code[i] != ';') ++i;
    if (i >= s.body_end || code[i] != '{') continue;
    const std::size_t end = match_block(code, i, '{', '}');
    if (end == std::string_view::npos) continue;
    return std::string(s.where->code_no_comments.substr(i, end - i));
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Rule: determinism-unordered-iter
// ---------------------------------------------------------------------------

// Harvest names of variables declared with an unordered container type.
// Member names (trailing underscore) go into the cross-file `members` set —
// they are declared in headers and iterated in .cc files — while locals and
// parameters stay scoped to the declaring file, so a common local name in
// one file cannot taint every other file. Also harvests
// `using Alias = std::unordered_map<...>` aliases and variables declared
// with those aliases.
void harvest_unordered_names(const Prepared& p, std::set<std::string>& members,
                             std::set<std::string>& locals, std::set<std::string>& aliases) {
  const std::string_view code = p.code;
  auto harvest_decl_after = [&](std::size_t type_begin, std::size_t after_type) {
    std::size_t i = skip_ws(code, after_type);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) i = skip_ws(code, i + 1);
    std::size_t end = i;
    const std::string var = read_ident(code, i, &end);
    if (var.empty()) return;
    const std::size_t next = skip_ws(code, end);
    if (next < code.size() &&
        (code[next] == ';' || code[next] == '=' || code[next] == '{' || code[next] == ',' ||
         code[next] == ')' || code[next] == '(')) {
      (var.ends_with("_") ? members : locals).insert(var);
    }
    // `using Alias = std::unordered_map<...>` — look back for the alias name.
    std::size_t back = prev_nonspace(code, type_begin);
    while (back != std::string_view::npos &&
           (code[back] == ':' || ident_char(code[back]))) {
      if (code[back] == ':') {
        back = prev_nonspace(code, back);
        continue;
      }
      break;
    }
    if (back != std::string_view::npos && code[back] == '=') {
      std::size_t name_last = prev_nonspace(code, back);
      if (name_last != std::string_view::npos && ident_char(code[name_last])) {
        std::size_t begin = name_last;
        while (begin > 0 && ident_char(code[begin - 1])) --begin;
        aliases.insert(std::string(code.substr(begin, name_last - begin + 1)));
      }
    }
  };

  for (const std::string_view word : {std::string_view("unordered_map"),
                                      std::string_view("unordered_set"),
                                      std::string_view("unordered_multimap"),
                                      std::string_view("unordered_multiset")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      const std::size_t open = skip_ws(code, pos + word.size());
      if (open >= code.size() || code[open] != '<') continue;
      const std::size_t close = match_angle(code, open);
      if (close == std::string_view::npos) continue;
      harvest_decl_after(pos, close);
    }
  }
}

void harvest_alias_decls(const Prepared& p, const std::set<std::string>& aliases,
                         std::set<std::string>& members, std::set<std::string>& locals) {
  const std::string_view code = p.code;
  for (const std::string& alias : aliases) {
    for (std::size_t pos = find_word(code, alias); pos != std::string_view::npos;
         pos = find_word(code, alias, pos + 1)) {
      std::size_t after = pos + alias.size();
      const std::size_t maybe_angle = skip_ws(code, after);
      if (maybe_angle < code.size() && code[maybe_angle] == '<') {
        const std::size_t close = match_angle(code, maybe_angle);
        if (close == std::string_view::npos) continue;
        after = close;
      }
      std::size_t i = skip_ws(code, after);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) i = skip_ws(code, i + 1);
      std::size_t end = i;
      const std::string var = read_ident(code, i, &end);
      if (var.empty() || var == alias) continue;
      const std::size_t next = skip_ws(code, end);
      if (next < code.size() && (code[next] == ';' || code[next] == '=' || code[next] == '{')) {
        (var.ends_with("_") ? members : locals).insert(var);
      }
    }
  }
}

void check_unordered_iteration(const Prepared& p, const std::set<std::string>& names,
                               std::vector<Diagnostic>& out) {
  const std::string_view code = p.code;
  // Range-for whose range expression mentions a harvested name.
  for (std::size_t pos = find_word(code, "for"); pos != std::string_view::npos;
       pos = find_word(code, "for", pos + 1)) {
    const std::size_t open = skip_ws(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_block(code, open, '(', ')');
    if (close == std::string_view::npos) continue;
    const std::string_view header = code.substr(open + 1, close - open - 2);
    // Find a top-level ':' that is not part of '::'.
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '[' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '>') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < header.size() && header[i + 1] == ':') || (i > 0 && header[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string_view::npos) continue;
    // The range expression must BE the container — the bare name or a member
    // access ending in it (`x.name`, `this->name`). Subscripts or further
    // member accesses (`entries_[i].indices`) iterate something else that
    // merely shares the identifier.
    std::string range;
    for (const char c : header.substr(colon + 1)) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) range.push_back(c);
    }
    for (const std::string& name : names) {
      if (range == name || range.ends_with("." + name) || range.ends_with(">" + name)) {
        out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kUnorderedIter),
                       "range-for over unordered container '" + name +
                           "': iteration order is the hash order, which leaks "
                           "nondeterminism into anything emitted from this loop; sort "
                           "keys at the emission point (or suppress with a rationale "
                           "if order provably cannot escape)"});
        break;
      }
    }
  }
  // Iterator-style walks: name.begin() / name.cbegin().
  for (const std::string& name : names) {
    for (std::size_t pos = find_word(code, name); pos != std::string_view::npos;
         pos = find_word(code, name, pos + 1)) {
      std::size_t i = skip_ws(code, pos + name.size());
      if (i >= code.size() || code[i] != '.') continue;
      i = skip_ws(code, i + 1);
      if (word_at(code, i, "begin") || word_at(code, i, "cbegin")) {
        out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kUnorderedIter),
                       "iterator walk over unordered container '" + name +
                           "' (begin()): iteration order is the hash order; sort keys "
                           "at the emission point or suppress with a rationale"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism-wallclock
// ---------------------------------------------------------------------------

void check_wallclock(const Prepared& p, std::vector<Diagnostic>& out) {
  // netsim owns the seeded clock and RNG; the rule polices everything else.
  if (path_contains(p.file->path, "netsim/")) return;
  const std::string_view code = p.code;

  auto diag = [&](std::size_t pos, const std::string& what) {
    out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kWallclock),
                   what + " is nondeterministic across runs; simulation code must go "
                          "through netsim's seeded clock/RNG (wall-clock benchmark "
                          "harness timing may suppress with a rationale)"});
  };

  for (const std::string_view word :
       {std::string_view("random_device"), std::string_view("srand"),
        std::string_view("gettimeofday"), std::string_view("clock_gettime"),
        std::string_view("localtime"), std::string_view("gmtime"), std::string_view("mktime")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      diag(pos, "'" + std::string(word) + "'");
    }
  }
  // rand( / time( — bare calls only; member access (x.time()) is unrelated.
  for (const std::string_view word : {std::string_view("rand"), std::string_view("time")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      const std::size_t after = skip_ws(code, pos + word.size());
      if (after >= code.size() || code[after] != '(') continue;
      const std::size_t before = prev_nonspace(code, pos);
      if (before != std::string_view::npos &&
          (code[before] == '.' ||
           (code[before] == '>' && before > 0 && code[before - 1] == '-'))) {
        continue;
      }
      diag(pos, "'" + std::string(word) + "()'");
    }
  }
  // system_clock::now / steady_clock::now / high_resolution_clock::now.
  for (const std::string_view clk :
       {std::string_view("system_clock"), std::string_view("steady_clock"),
        std::string_view("high_resolution_clock")}) {
    for (std::size_t pos = find_word(code, clk); pos != std::string_view::npos;
         pos = find_word(code, clk, pos + 1)) {
      std::size_t i = skip_ws(code, pos + clk.size());
      if (i + 1 < code.size() && code[i] == ':' && code[i + 1] == ':') {
        i = skip_ws(code, i + 2);
        if (word_at(code, i, "now")) diag(pos, "'" + std::string(clk) + "::now()'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism-pointer-key
// ---------------------------------------------------------------------------

void check_pointer_keys(const Prepared& p, std::vector<Diagnostic>& out) {
  const std::string_view code = p.code;
  for (const std::string_view word : {std::string_view("map"), std::string_view("set"),
                                      std::string_view("multimap"), std::string_view("multiset")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      // Require a `::` qualifier so bare identifiers named `map`/`set` and
      // member calls (.set(...)) don't trip the rule. unordered_map is its
      // own token, so this never double-reports.
      const std::size_t before = prev_nonspace(code, pos);
      if (before == std::string_view::npos || code[before] != ':' || before == 0 ||
          code[before - 1] != ':') {
        continue;
      }
      const std::size_t open = skip_ws(code, pos + word.size());
      if (open >= code.size() || code[open] != '<') continue;
      const std::size_t close = match_angle(code, open);
      if (close == std::string_view::npos) continue;
      // First top-level template argument.
      std::string_view args = code.substr(open + 1, close - open - 2);
      int depth = 0;
      std::size_t arg_end = args.size();
      for (std::size_t i = 0; i < args.size(); ++i) {
        const char c = args[i];
        if (c == '<' || c == '(' || c == '[') ++depth;
        if (c == '>' || c == ')' || c == ']') --depth;
        if (c == ',' && depth == 0) {
          arg_end = i;
          break;
        }
      }
      std::string key(args.substr(0, arg_end));
      // Trim trailing whitespace and a trailing `const` qualifier.
      auto rtrim = [&] {
        while (!key.empty() && std::isspace(static_cast<unsigned char>(key.back())) != 0) {
          key.pop_back();
        }
      };
      rtrim();
      if (key.ends_with("const")) {
        key.erase(key.size() - 5);
        rtrim();
      }
      if (!key.empty() && key.back() == '*') {
        out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kPointerKey),
                       "std::" + std::string(word) + " keyed by pointer type '" + key +
                           "': comparison order follows allocation addresses, which "
                           "differ across runs; use an unordered (hashed) container "
                           "for point access, or key by a stable ID if iterated"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: codec-parity and phase-sum
// ---------------------------------------------------------------------------

void check_codec_parity(const std::vector<Prepared>& files, const std::vector<StructDef>& structs,
                        std::vector<Diagnostic>& out) {
  for (const StructDef& s : structs) {
    if (!s.has_to_json || !s.has_from_json) continue;
    const auto writer = find_method_body(files, s, "to_json");
    const auto reader = find_method_body(files, s, "from_json");
    if (!writer.has_value() || !reader.has_value()) {
      // Declarations without definitions anywhere in the scanned set: either
      // a scan over a partial tree (tests pass single fixtures) or a genuinely
      // missing codec half. Flag only when one half is defined.
      if (writer.has_value() != reader.has_value()) {
        out.push_back({std::string(s.where->file->path), s.line, std::string(kCodecParity),
                       "struct '" + s.name + "' defines " +
                           (writer.has_value() ? "to_json" : "from_json") + " but no " +
                           (writer.has_value() ? "from_json" : "to_json") +
                           " definition was found: the codec cannot round-trip"});
      }
      continue;
    }
    for (const Field& f : s.fields) {
      const bool in_writer = contains_word(*writer, f.name);
      const bool in_reader = contains_word(*reader, f.name);
      if (in_writer && in_reader) continue;
      std::string missing;
      if (!in_writer && !in_reader) {
        missing = "to_json or from_json";
      } else if (!in_writer) {
        missing = "to_json";
      } else {
        missing = "from_json";
      }
      out.push_back({std::string(s.where->file->path), f.line, std::string(kCodecParity),
                     "field '" + f.name + "' of '" + s.name + "' is not referenced by " +
                         missing +
                         ": the JSON codec would silently drop it on round trip; wire it "
                         "through both sides (or suppress with a rationale for derived "
                         "fields rebuilt by the reader)"});
    }
  }
}

void check_phase_sum(const std::vector<Prepared>& files, const std::vector<StructDef>& structs,
                     std::vector<Diagnostic>& out) {
  for (const StructDef& s : structs) {
    std::vector<const Field*> durations;
    for (const Field& f : s.fields) {
      if (contains_word(f.decl, "SimDuration")) durations.push_back(&f);
    }
    if (s.name == "QueryTiming" && !s.has_phase_sum && !durations.empty()) {
      out.push_back({std::string(s.where->file->path), s.line, std::string(kPhaseSum),
                     "struct 'QueryTiming' must define phase_sum() covering its "
                     "SimDuration phase members (additive timing invariant)"});
      continue;
    }
    if (!s.has_phase_sum || durations.empty()) continue;
    const auto body = find_method_body(files, s, "phase_sum");
    if (!body.has_value()) continue;
    for (const Field* f : durations) {
      if (contains_word(*body, f->name)) continue;
      out.push_back({std::string(s.where->file->path), f->line, std::string(kPhaseSum),
                     "SimDuration member '" + f->name + "' of '" + s.name +
                         "' is not included in phase_sum(): new phases must stay "
                         "additive (phase_sum() <= total); add it to the sum, or "
                         "suppress with a rationale for aggregate members"});
    }
  }
}

// ---------------------------------------------------------------------------
// Hygiene rules.
// ---------------------------------------------------------------------------

void check_pragma_once(const Prepared& p, std::vector<Diagnostic>& out) {
  if (!is_header(p.file->path)) return;
  const std::string_view code = p.code;
  if (code.find("#pragma once") != std::string_view::npos) return;
  if (code.find("#ifndef") != std::string_view::npos &&
      code.find("#define") != std::string_view::npos) {
    return;
  }
  out.push_back({std::string(p.file->path), 1, std::string(kPragmaOnce),
                 "header has neither #pragma once nor an include guard: double "
                 "inclusion will produce redefinition errors"});
}

void check_using_namespace(const Prepared& p, std::vector<Diagnostic>& out) {
  if (!is_header(p.file->path)) return;
  const std::string_view code = p.code;
  for (std::size_t pos = find_word(code, "using"); pos != std::string_view::npos;
       pos = find_word(code, "using", pos + 1)) {
    const std::size_t next = skip_ws(code, pos + 5);
    if (word_at(code, next, "namespace")) {
      out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kUsingNamespace),
                     "'using namespace' in a header injects the namespace into every "
                     "translation unit that includes it; qualify names instead"});
    }
  }
}

void check_nodiscard_result(const Prepared& p, std::vector<Diagnostic>& out) {
  if (!is_header(p.file->path)) return;
  const std::string_view code = p.code;
  for (std::size_t pos = find_word(code, "Result"); pos != std::string_view::npos;
       pos = find_word(code, "Result", pos + 1)) {
    const std::size_t open = pos + 6;
    if (open >= code.size() || code[open] != '<') continue;
    const std::size_t close = match_angle(code, open);
    if (close == std::string_view::npos) continue;
    // Must look like a function declaration: `Result<...> name (`.
    std::size_t i = skip_ws(code, close);
    std::size_t name_end = i;
    const std::string fn = read_ident(code, i, &name_end);
    if (fn.empty() || fn == "operator") continue;
    const std::size_t paren = skip_ws(code, name_end);
    if (paren >= code.size() || code[paren] != '(') continue;
    // Walk the tokens before `Result` back to the start of the declaration;
    // specifiers are fine, `[[nodiscard]]` absolves, and `friend` / `using` /
    // `return` / `,` / `(` contexts are not declarations we police.
    std::size_t back = pos;
    bool absolved = false;
    bool skip = false;
    while (true) {
      const std::size_t prev = prev_nonspace(code, back);
      if (prev == std::string_view::npos) break;
      const char c = code[prev];
      if (c == ']' && prev > 0 && code[prev - 1] == ']') {
        absolved = true;  // [[nodiscard]] (or any attribute) directly before
        break;
      }
      if (ident_char(c)) {
        std::size_t begin = prev;
        while (begin > 0 && ident_char(code[begin - 1])) --begin;
        const std::string_view tok = code.substr(begin, prev - begin + 1);
        if (tok == "static" || tok == "virtual" || tok == "inline" || tok == "constexpr" ||
            tok == "explicit") {
          back = begin;
          continue;
        }
        skip = true;  // `friend Result<...>`, `using X = Result<...>`, casts, ...
        break;
      }
      break;  // ; } { ( , < etc. — start of statement or a non-declaration use
    }
    if (absolved || skip) continue;
    // Exclude out-of-line qualified definitions (`Result<T> S::f(...)`).
    if (name_end + 1 < code.size() && code[name_end] == ':' && code[name_end + 1] == ':') continue;
    out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kNodiscardResult),
                   "function '" + fn + "' returns Result<...> without [[nodiscard]]: a "
                   "caller that drops the return value silently loses the error"});
  }
}

// ---------------------------------------------------------------------------
// Rule: obs-span-balance
// ---------------------------------------------------------------------------

void check_obs_span_balance(const Prepared& p, std::vector<Diagnostic>& out) {
  // src/obs implements the span protocol itself (SpanGuard pairs the calls);
  // everywhere else must go through the OBS_SPAN macro so scopes self-close.
  if (path_contains(p.file->path, "obs/")) return;
  const std::string_view code = p.code;
  for (const std::string_view word :
       {std::string_view("begin_span"), std::string_view("end_span")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kObsSpanBalance),
                     "manual '" + std::string(word) + "' call: hand-paired spans leak on "
                     "early return or exception; use the OBS_SPAN RAII macro"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: concurrency-raw-thread
// ---------------------------------------------------------------------------

void check_raw_thread(const Prepared& p, std::vector<Diagnostic>& out) {
  // The staged pipeline engine owns every worker thread lifecycle (spawn,
  // ring wiring, drain-on-error, join), and src/util hosts the low-level
  // concurrency primitives it is built from. Ad-hoc std::thread anywhere
  // else escapes that discipline: no shard determinism, no guaranteed join,
  // no first-error propagation.
  if (path_contains(p.file->path, "core/parallel_campaign.cc")) return;
  if (path_contains(p.file->path, "util/")) return;
  const std::string_view code = p.code;
  for (const std::string_view word :
       {std::string_view("thread"), std::string_view("jthread")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      // Only the qualified type name `std::thread` counts. This skips
      // `#include <thread>`, identifiers like `threads` (word boundary),
      // and `std::this_thread::*` (the match inside `this_thread` is not a
      // whole word).
      const std::size_t colon2 = prev_nonspace(code, pos);
      if (colon2 == std::string_view::npos || colon2 < 1) continue;
      if (code[colon2] != ':' || code[colon2 - 1] != ':') continue;
      const std::size_t std_last = prev_nonspace(code, colon2 - 1);
      if (std_last == std::string_view::npos || std_last < 2) continue;
      if (code.compare(std_last - 2, 3, "std") != 0) continue;
      if (std_last >= 3 && ident_char(code[std_last - 3])) continue;
      out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kRawThread),
                     "raw 'std::" + std::string(word) + "' outside core/parallel_campaign.cc "
                     "and src/util: route parallel work through run_pipeline() so shards stay "
                     "deterministic and errors join cleanly"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Diagnostic> run_lint(const std::vector<SourceFile>& files) {
  std::vector<Prepared> prepared;
  prepared.reserve(files.size());
  for (const SourceFile& f : files) prepared.push_back(prepare(f));

  // Cross-file harvest for the unordered-iteration rule.
  std::set<std::string> unordered_members;
  std::set<std::string> unordered_aliases;
  std::vector<std::set<std::string>> unordered_locals(prepared.size());
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    harvest_unordered_names(prepared[i], unordered_members, unordered_locals[i],
                            unordered_aliases);
  }
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    harvest_alias_decls(prepared[i], unordered_aliases, unordered_members, unordered_locals[i]);
  }

  const std::vector<StructDef> structs = collect_structs(prepared);

  std::vector<Diagnostic> diags;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    const Prepared& p = prepared[i];
    std::set<std::string> names = unordered_members;
    names.insert(unordered_locals[i].begin(), unordered_locals[i].end());
    check_unordered_iteration(p, names, diags);
    check_wallclock(p, diags);
    check_pointer_keys(p, diags);
    check_pragma_once(p, diags);
    check_using_namespace(p, diags);
    check_nodiscard_result(p, diags);
    check_obs_span_balance(p, diags);
    check_raw_thread(p, diags);
  }
  check_codec_parity(prepared, structs, diags);
  check_phase_sum(prepared, structs, diags);

  // Apply suppressions, then sort and dedupe for stable output.
  std::vector<Diagnostic> out;
  for (Diagnostic& d : diags) {
    const Prepared* p = nullptr;
    for (const Prepared& cand : prepared) {
      if (cand.file->path == d.path) {
        p = &cand;
        break;
      }
    }
    if (p != nullptr && is_allowed(*p, d.line, d.rule)) continue;
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.path, a.line, a.rule, a.message) <
           std::tie(b.path, b.line, b.rule, b.message);
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SourceFile> load_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        paths.push_back(entry.path().generic_string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> out;
  out.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    out.push_back(SourceFile{path, std::move(buf).str()});
  }
  return out;
}

std::string format(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ": error: [" + d.rule + "] " + d.message;
}

}  // namespace ednsm::lint
