#include "lint/lint.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>

#include "lint/graph.h"
#include "lint/layers.h"

namespace ednsm::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule IDs. These are the stable, user-facing names used in diagnostics and
// in `// ednsm-lint: allow(...)` suppressions and baseline entries.
// ---------------------------------------------------------------------------

constexpr std::string_view kUnorderedIter = "determinism-unordered-iter";
constexpr std::string_view kWallclock = "determinism-wallclock";
constexpr std::string_view kPointerKey = "determinism-pointer-key";
constexpr std::string_view kTaint = "determinism-taint";
constexpr std::string_view kCodecParity = "codec-parity";
constexpr std::string_view kPhaseSum = "phase-sum";
constexpr std::string_view kLayering = "arch-layering";
constexpr std::string_view kIncludeCycle = "arch-include-cycle";
constexpr std::string_view kPragmaOnce = "hygiene-pragma-once";
constexpr std::string_view kUsingNamespace = "hygiene-using-namespace";
constexpr std::string_view kNodiscardResult = "hygiene-nodiscard-result";
constexpr std::string_view kObsSpanBalance = "obs-span-balance";
constexpr std::string_view kObsDomain = "obs-domain-separation";
constexpr std::string_view kRawThread = "concurrency-raw-thread";

const std::vector<RuleInfo> kRules = {
    {kUnorderedIter,
     "iteration over an unordered container escapes its hash order into program "
     "output; sort keys at the emission point or suppress with a rationale"},
    {kWallclock,
     "wall-clock / ambient-randomness call outside netsim's seeded clock "
     "(std::rand, random_device, time(), *_clock::now) breaks run determinism"},
    {kPointerKey,
     "ordered container keyed by pointer: iteration order follows allocation "
     "addresses; use an unordered (hashed) container for point access"},
    {kTaint,
     "a nondeterministic value (wall clock, thread id, pointer-to-integer cast, "
     "unordered iteration) flows along call edges into a serialization sink "
     "(to_json / shard writers / obs export); the diagnostic names the full "
     "source-to-sink call path — suppress at the source line, the true origin"},
    {kCodecParity,
     "every public field of a struct with to_json/from_json must be referenced "
     "by the writer and the reader (round-trip completeness); helper functions "
     "called by the codec count as references"},
    {kPhaseSum,
     "every SimDuration phase member of a timing struct must be wired through "
     "phase_sum() (additive phase-timing discipline)"},
    {kLayering,
     "#include edge between src/ modules that the declared dependency DAG "
     "(tools/lint/layers.conf) does not allow; modules may depend downward only"},
    {kIncludeCycle,
     "cycle in the file-level include graph: headers in a cycle cannot be "
     "layered and break independent compilation"},
    {kPragmaOnce, "header lacks #pragma once (or a classic include guard)"},
    {kUsingNamespace, "using namespace at header scope pollutes every includer"},
    {kNodiscardResult,
     "function declared to return Result<...> without [[nodiscard]]: dropped "
     "errors vanish silently"},
    {kObsSpanBalance,
     "manual Tracer begin_span/end_span call outside src/obs: hand-paired "
     "spans leak on early return or exception; use the OBS_SPAN RAII macro"},
    {kObsDomain,
     "wall-clock runtime telemetry (a function defined in obs/runtime, the "
     "sanctioned host-clock domain) reaches a deterministic serialization sink "
     "(to_json / to_binary / shard writers) along call edges; runtime counters "
     "must stay out of the byte-identical output contract — export them via "
     "heartbeat/manifest files or to_prometheus"},
    {kRawThread,
     "raw std::thread/std::jthread outside the pipeline engine "
     "(core/parallel_campaign.cc) and src/util: ad-hoc threads bypass the "
     "staged pipeline's shard determinism and join/error discipline; route "
     "work through run_pipeline()"},
};

// ---------------------------------------------------------------------------
// Rule: determinism-unordered-iter
// ---------------------------------------------------------------------------

// Harvest names of variables declared with an unordered container type.
// Member names (trailing underscore) go into the cross-file `members` set —
// they are declared in headers and iterated in .cc files — while locals and
// parameters stay scoped to the declaring file, so a common local name in
// one file cannot taint every other file. Also harvests
// `using Alias = std::unordered_map<...>` aliases and variables declared
// with those aliases.
void harvest_unordered_names(const Prepared& p, std::set<std::string>& members,
                             std::set<std::string>& locals, std::set<std::string>& aliases) {
  const std::string_view code = p.code;
  auto harvest_decl_after = [&](std::size_t type_begin, std::size_t after_type) {
    std::size_t i = skip_ws(code, after_type);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) i = skip_ws(code, i + 1);
    std::size_t end = i;
    const std::string var = read_ident(code, i, &end);
    if (var.empty()) return;
    const std::size_t next = skip_ws(code, end);
    if (next < code.size() &&
        (code[next] == ';' || code[next] == '=' || code[next] == '{' || code[next] == ',' ||
         code[next] == ')' || code[next] == '(')) {
      (var.ends_with("_") ? members : locals).insert(var);
    }
    // `using Alias = std::unordered_map<...>` — look back for the alias name.
    std::size_t back = prev_nonspace(code, type_begin);
    while (back != std::string_view::npos &&
           (code[back] == ':' || ident_char(code[back]))) {
      if (code[back] == ':') {
        back = prev_nonspace(code, back);
        continue;
      }
      break;
    }
    if (back != std::string_view::npos && code[back] == '=') {
      std::size_t name_last = prev_nonspace(code, back);
      if (name_last != std::string_view::npos && ident_char(code[name_last])) {
        std::size_t begin = name_last;
        while (begin > 0 && ident_char(code[begin - 1])) --begin;
        aliases.insert(std::string(code.substr(begin, name_last - begin + 1)));
      }
    }
  };

  for (const std::string_view word : {std::string_view("unordered_map"),
                                      std::string_view("unordered_set"),
                                      std::string_view("unordered_multimap"),
                                      std::string_view("unordered_multiset")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      const std::size_t open = skip_ws(code, pos + word.size());
      if (open >= code.size() || code[open] != '<') continue;
      const std::size_t close = match_angle(code, open);
      if (close == std::string_view::npos) continue;
      harvest_decl_after(pos, close);
    }
  }
}

void harvest_alias_decls(const Prepared& p, const std::set<std::string>& aliases,
                         std::set<std::string>& members, std::set<std::string>& locals) {
  const std::string_view code = p.code;
  for (const std::string& alias : aliases) {
    for (std::size_t pos = find_word(code, alias); pos != std::string_view::npos;
         pos = find_word(code, alias, pos + 1)) {
      std::size_t after = pos + alias.size();
      const std::size_t maybe_angle = skip_ws(code, after);
      if (maybe_angle < code.size() && code[maybe_angle] == '<') {
        const std::size_t close = match_angle(code, maybe_angle);
        if (close == std::string_view::npos) continue;
        after = close;
      }
      std::size_t i = skip_ws(code, after);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) i = skip_ws(code, i + 1);
      std::size_t end = i;
      const std::string var = read_ident(code, i, &end);
      if (var.empty() || var == alias) continue;
      const std::size_t next = skip_ws(code, end);
      if (next < code.size() && (code[next] == ';' || code[next] == '=' || code[next] == '{')) {
        (var.ends_with("_") ? members : locals).insert(var);
      }
    }
  }
}

// One unordered-iteration site. Shared by the token rule (which reports it
// directly) and the taint pass (which follows it to serialization sinks).
struct UnorderedSite {
  std::size_t pos = 0;
  std::string name;
  std::string what;  // "range-for" or "iterator walk"
};

std::vector<UnorderedSite> collect_unordered_sites(const Prepared& p,
                                                   const std::set<std::string>& names) {
  std::vector<UnorderedSite> sites;
  const std::string_view code = p.code;
  // Range-for whose range expression mentions a harvested name.
  for (std::size_t pos = find_word(code, "for"); pos != std::string_view::npos;
       pos = find_word(code, "for", pos + 1)) {
    const std::size_t open = skip_ws(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_block(code, open, '(', ')');
    if (close == std::string_view::npos) continue;
    const std::string_view header = code.substr(open + 1, close - open - 2);
    // Find a top-level ':' that is not part of '::'.
    std::size_t colon = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '[' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '>') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < header.size() && header[i + 1] == ':') || (i > 0 && header[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string_view::npos) continue;
    // The range expression must BE the container — the bare name or a member
    // access ending in it (`x.name`, `this->name`). Subscripts or further
    // member accesses (`entries_[i].indices`) iterate something else that
    // merely shares the identifier.
    std::string range;
    for (const char c : header.substr(colon + 1)) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) range.push_back(c);
    }
    for (const std::string& name : names) {
      if (range == name || range.ends_with("." + name) || range.ends_with(">" + name)) {
        sites.push_back(UnorderedSite{pos, name, "range-for"});
        break;
      }
    }
  }
  // Iterator-style walks: name.begin() / name.cbegin().
  for (const std::string& name : names) {
    for (std::size_t pos = find_word(code, name); pos != std::string_view::npos;
         pos = find_word(code, name, pos + 1)) {
      std::size_t i = skip_ws(code, pos + name.size());
      if (i >= code.size() || code[i] != '.') continue;
      i = skip_ws(code, i + 1);
      if (word_at(code, i, "begin") || word_at(code, i, "cbegin")) {
        sites.push_back(UnorderedSite{pos, name, "iterator walk"});
      }
    }
  }
  std::sort(sites.begin(), sites.end(), [](const UnorderedSite& a, const UnorderedSite& b) {
    return std::tie(a.pos, a.name) < std::tie(b.pos, b.name);
  });
  return sites;
}

void check_unordered_iteration(const Prepared& p, const std::vector<UnorderedSite>& sites,
                               std::vector<Diagnostic>& out) {
  for (const UnorderedSite& s : sites) {
    if (s.what == "range-for") {
      out.push_back({std::string(p.file->path), line_of(p, s.pos), std::string(kUnorderedIter),
                     "range-for over unordered container '" + s.name +
                         "': iteration order is the hash order, which leaks "
                         "nondeterminism into anything emitted from this loop; sort "
                         "keys at the emission point (or suppress with a rationale "
                         "if order provably cannot escape)",
                     "",
                     {}});
    } else {
      out.push_back({std::string(p.file->path), line_of(p, s.pos), std::string(kUnorderedIter),
                     "iterator walk over unordered container '" + s.name +
                         "' (begin()): iteration order is the hash order; sort keys "
                         "at the emission point or suppress with a rationale",
                     "",
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism-wallclock
// ---------------------------------------------------------------------------

void check_wallclock(const Prepared& p, std::vector<Diagnostic>& out) {
  // netsim owns the seeded clock and RNG; obs/runtime is the sanctioned
  // wall-clock telemetry domain (obs-domain-separation polices its outflow).
  // The rule polices everything else.
  if (path_contains(p.file->path, "netsim/") ||
      path_contains(p.file->path, "obs/runtime")) {
    return;
  }
  const std::string_view code = p.code;

  auto diag = [&](std::size_t pos, const std::string& what) {
    out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kWallclock),
                   what + " is nondeterministic across runs; simulation code must go "
                          "through netsim's seeded clock/RNG (wall-clock benchmark "
                          "harness timing may suppress with a rationale)",
                   "",
                   {}});
  };

  for (const std::string_view word :
       {std::string_view("random_device"), std::string_view("srand"),
        std::string_view("gettimeofday"), std::string_view("clock_gettime"),
        std::string_view("localtime"), std::string_view("gmtime"), std::string_view("mktime")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      diag(pos, "'" + std::string(word) + "'");
    }
  }
  // rand( / time( — bare calls only; member access (x.time()) is unrelated.
  for (const std::string_view word : {std::string_view("rand"), std::string_view("time")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      const std::size_t after = skip_ws(code, pos + word.size());
      if (after >= code.size() || code[after] != '(') continue;
      const std::size_t before = prev_nonspace(code, pos);
      if (before != std::string_view::npos &&
          (code[before] == '.' ||
           (code[before] == '>' && before > 0 && code[before - 1] == '-'))) {
        continue;
      }
      diag(pos, "'" + std::string(word) + "()'");
    }
  }
  // system_clock::now / steady_clock::now / high_resolution_clock::now.
  for (const std::string_view clk :
       {std::string_view("system_clock"), std::string_view("steady_clock"),
        std::string_view("high_resolution_clock")}) {
    for (std::size_t pos = find_word(code, clk); pos != std::string_view::npos;
         pos = find_word(code, clk, pos + 1)) {
      std::size_t i = skip_ws(code, pos + clk.size());
      if (i + 1 < code.size() && code[i] == ':' && code[i + 1] == ':') {
        i = skip_ws(code, i + 2);
        if (word_at(code, i, "now")) diag(pos, "'" + std::string(clk) + "::now()'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism-pointer-key
// ---------------------------------------------------------------------------

void check_pointer_keys(const Prepared& p, std::vector<Diagnostic>& out) {
  const std::string_view code = p.code;
  for (const std::string_view word : {std::string_view("map"), std::string_view("set"),
                                      std::string_view("multimap"), std::string_view("multiset")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      // Require a `::` qualifier so bare identifiers named `map`/`set` and
      // member calls (.set(...)) don't trip the rule. unordered_map is its
      // own token, so this never double-reports.
      const std::size_t before = prev_nonspace(code, pos);
      if (before == std::string_view::npos || code[before] != ':' || before == 0 ||
          code[before - 1] != ':') {
        continue;
      }
      const std::size_t open = skip_ws(code, pos + word.size());
      if (open >= code.size() || code[open] != '<') continue;
      const std::size_t close = match_angle(code, open);
      if (close == std::string_view::npos) continue;
      // First top-level template argument.
      std::string_view args = code.substr(open + 1, close - open - 2);
      int depth = 0;
      std::size_t arg_end = args.size();
      for (std::size_t i = 0; i < args.size(); ++i) {
        const char c = args[i];
        if (c == '<' || c == '(' || c == '[') ++depth;
        if (c == '>' || c == ')' || c == ']') --depth;
        if (c == ',' && depth == 0) {
          arg_end = i;
          break;
        }
      }
      std::string key(args.substr(0, arg_end));
      // Trim trailing whitespace and a trailing `const` qualifier.
      auto rtrim = [&] {
        while (!key.empty() && std::isspace(static_cast<unsigned char>(key.back())) != 0) {
          key.pop_back();
        }
      };
      rtrim();
      if (key.ends_with("const")) {
        key.erase(key.size() - 5);
        rtrim();
      }
      if (!key.empty() && key.back() == '*') {
        out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kPointerKey),
                       "std::" + std::string(word) + " keyed by pointer type '" + key +
                           "': comparison order follows allocation addresses, which "
                           "differ across runs; use an unordered (hashed) container "
                           "for point access, or key by a stable ID if iterated",
                       "",
                       {}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: codec-parity and phase-sum
// ---------------------------------------------------------------------------

// The body of `Struct::method` expanded with the bodies of its intraproject
// callees (depth <= 2, same module or same file), so a field serialized
// inside a helper function still counts as referenced. Falls back to the
// plain body when the function pass did not model the method.
std::optional<std::string> expanded_method_body(const SymbolIndex& index, const CallGraph& graph,
                                                const StructDef& s, std::string_view method) {
  // Locate the defined FunctionDef for Struct::method. When several structs
  // share a name, prefer the definition inline in this struct's body, then
  // one in the struct's own module.
  int fn = -1;
  int best_rank = -1;
  for (const int id : index.definitions_named(method)) {
    const FunctionDef& cand = index.functions[static_cast<std::size_t>(id)];
    if (cand.class_name != s.name) continue;
    int rank = 0;
    if (!index.modules[static_cast<std::size_t>(cand.file)].empty() &&
        index.modules[static_cast<std::size_t>(cand.file)] ==
            index.modules[static_cast<std::size_t>(s.file)]) {
      rank = 1;
    }
    if (cand.file == s.file && s.body_begin <= cand.body_begin && cand.body_end <= s.body_end) {
      rank = 2;
    }
    if (rank > best_rank) {
      best_rank = rank;
      fn = id;
    }
  }
  if (fn < 0) return method_body(index, s, method);

  const std::string& home_module = index.modules[static_cast<std::size_t>(s.file)];
  std::string text;
  std::set<int> visited;
  std::deque<std::pair<int, int>> queue{{fn, 0}};  // (function id, depth)
  while (!queue.empty()) {
    const auto [cur, depth] = queue.front();
    queue.pop_front();
    if (!visited.insert(cur).second) continue;
    const FunctionDef& f = index.functions[static_cast<std::size_t>(cur)];
    text += function_body_with_strings(index, f);
    text += '\n';
    if (depth >= 2) continue;
    for (const CallSite& call : graph.calls[static_cast<std::size_t>(cur)]) {
      const FunctionDef& callee = index.functions[static_cast<std::size_t>(call.callee)];
      const std::string& callee_module = index.modules[static_cast<std::size_t>(callee.file)];
      if (callee.file == f.file || (!home_module.empty() && callee_module == home_module)) {
        queue.emplace_back(call.callee, depth + 1);
      }
    }
  }
  if (text.empty()) return method_body(index, s, method);
  return text;
}

void check_codec_parity(const SymbolIndex& index, const CallGraph& graph,
                        std::vector<Diagnostic>& out) {
  for (const StructDef& s : index.structs) {
    if (!s.has_to_json || !s.has_from_json) continue;
    const auto writer = expanded_method_body(index, graph, s, "to_json");
    const auto reader = expanded_method_body(index, graph, s, "from_json");
    if (!writer.has_value() || !reader.has_value()) {
      // Declarations without definitions anywhere in the scanned set: either
      // a scan over a partial tree (tests pass single fixtures) or a genuinely
      // missing codec half. Flag only when one half is defined.
      if (writer.has_value() != reader.has_value()) {
        out.push_back({std::string(s.where->file->path), s.line, std::string(kCodecParity),
                       "struct '" + s.name + "' defines " +
                           (writer.has_value() ? "to_json" : "from_json") + " but no " +
                           (writer.has_value() ? "from_json" : "to_json") +
                           " definition was found: the codec cannot round-trip",
                       "",
                       {}});
      }
      continue;
    }
    for (const Field& f : s.fields) {
      const bool in_writer = contains_word(*writer, f.name);
      const bool in_reader = contains_word(*reader, f.name);
      if (in_writer && in_reader) continue;
      std::string missing;
      if (!in_writer && !in_reader) {
        missing = "to_json or from_json";
      } else if (!in_writer) {
        missing = "to_json";
      } else {
        missing = "from_json";
      }
      out.push_back({std::string(s.where->file->path), f.line, std::string(kCodecParity),
                     "field '" + f.name + "' of '" + s.name + "' is not referenced by " +
                         missing +
                         " (helpers called by the codec were searched too): the JSON "
                         "codec would silently drop it on round trip; wire it through "
                         "both sides (or suppress with a rationale for derived fields "
                         "rebuilt by the reader)",
                     "",
                     {}});
    }
  }
}

void check_phase_sum(const SymbolIndex& index, std::vector<Diagnostic>& out) {
  for (const StructDef& s : index.structs) {
    std::vector<const Field*> durations;
    for (const Field& f : s.fields) {
      if (contains_word(f.decl, "SimDuration")) durations.push_back(&f);
    }
    if (s.name == "QueryTiming" && !s.has_phase_sum && !durations.empty()) {
      out.push_back({std::string(s.where->file->path), s.line, std::string(kPhaseSum),
                     "struct 'QueryTiming' must define phase_sum() covering its "
                     "SimDuration phase members (additive timing invariant)",
                     "",
                     {}});
      continue;
    }
    if (!s.has_phase_sum || durations.empty()) continue;
    const auto body = method_body(index, s, "phase_sum");
    if (!body.has_value()) continue;
    for (const Field* f : durations) {
      if (contains_word(*body, f->name)) continue;
      out.push_back({std::string(s.where->file->path), f->line, std::string(kPhaseSum),
                     "SimDuration member '" + f->name + "' of '" + s.name +
                         "' is not included in phase_sum(): new phases must stay "
                         "additive (phase_sum() <= total); add it to the sum, or "
                         "suppress with a rationale for aggregate members",
                     "",
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Hygiene rules.
// ---------------------------------------------------------------------------

void check_pragma_once(const Prepared& p, std::vector<Diagnostic>& out) {
  if (!is_header(p.file->path)) return;
  const std::string_view code = p.code;
  if (code.find("#pragma once") != std::string_view::npos) return;
  if (code.find("#ifndef") != std::string_view::npos &&
      code.find("#define") != std::string_view::npos) {
    return;
  }
  out.push_back({std::string(p.file->path), 1, std::string(kPragmaOnce),
                 "header has neither #pragma once nor an include guard: double "
                 "inclusion will produce redefinition errors",
                 "",
                 {}});
}

void check_using_namespace(const Prepared& p, std::vector<Diagnostic>& out) {
  if (!is_header(p.file->path)) return;
  const std::string_view code = p.code;
  for (std::size_t pos = find_word(code, "using"); pos != std::string_view::npos;
       pos = find_word(code, "using", pos + 1)) {
    const std::size_t next = skip_ws(code, pos + 5);
    if (word_at(code, next, "namespace")) {
      out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kUsingNamespace),
                     "'using namespace' in a header injects the namespace into every "
                     "translation unit that includes it; qualify names instead",
                     "",
                     {}});
    }
  }
}

void check_nodiscard_result(const Prepared& p, std::vector<Diagnostic>& out) {
  if (!is_header(p.file->path)) return;
  const std::string_view code = p.code;
  for (std::size_t pos = find_word(code, "Result"); pos != std::string_view::npos;
       pos = find_word(code, "Result", pos + 1)) {
    const std::size_t open = pos + 6;
    if (open >= code.size() || code[open] != '<') continue;
    const std::size_t close = match_angle(code, open);
    if (close == std::string_view::npos) continue;
    // Must look like a function declaration: `Result<...> name (`.
    std::size_t i = skip_ws(code, close);
    std::size_t name_end = i;
    const std::string fn = read_ident(code, i, &name_end);
    if (fn.empty() || fn == "operator") continue;
    const std::size_t paren = skip_ws(code, name_end);
    if (paren >= code.size() || code[paren] != '(') continue;
    // Walk the tokens before `Result` back to the start of the declaration;
    // specifiers are fine, `[[nodiscard]]` absolves, and `friend` / `using` /
    // `return` / `,` / `(` contexts are not declarations we police.
    std::size_t back = pos;
    bool absolved = false;
    bool skip = false;
    while (true) {
      const std::size_t prev = prev_nonspace(code, back);
      if (prev == std::string_view::npos) break;
      const char c = code[prev];
      if (c == ']' && prev > 0 && code[prev - 1] == ']') {
        absolved = true;  // [[nodiscard]] (or any attribute) directly before
        break;
      }
      if (ident_char(c)) {
        std::size_t begin = prev;
        while (begin > 0 && ident_char(code[begin - 1])) --begin;
        const std::string_view tok = code.substr(begin, prev - begin + 1);
        if (tok == "static" || tok == "virtual" || tok == "inline" || tok == "constexpr" ||
            tok == "explicit") {
          back = begin;
          continue;
        }
        skip = true;  // `friend Result<...>`, `using X = Result<...>`, casts, ...
        break;
      }
      break;  // ; } { ( , < etc. — start of statement or a non-declaration use
    }
    if (absolved || skip) continue;
    // Exclude out-of-line qualified definitions (`Result<T> S::f(...)`).
    if (name_end + 1 < code.size() && code[name_end] == ':' && code[name_end + 1] == ':') continue;
    out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kNodiscardResult),
                   "function '" + fn + "' returns Result<...> without [[nodiscard]]: a "
                   "caller that drops the return value silently loses the error",
                   "",
                   {}});
  }
}

// ---------------------------------------------------------------------------
// Rule: obs-span-balance
// ---------------------------------------------------------------------------

void check_obs_span_balance(const Prepared& p, std::vector<Diagnostic>& out) {
  // src/obs implements the span protocol itself (SpanGuard pairs the calls);
  // everywhere else must go through the OBS_SPAN macro so scopes self-close.
  if (path_contains(p.file->path, "obs/")) return;
  const std::string_view code = p.code;
  for (const std::string_view word :
       {std::string_view("begin_span"), std::string_view("end_span")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kObsSpanBalance),
                     "manual '" + std::string(word) + "' call: hand-paired spans leak on "
                     "early return or exception; use the OBS_SPAN RAII macro",
                     "",
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: concurrency-raw-thread
// ---------------------------------------------------------------------------

void check_raw_thread(const Prepared& p, std::vector<Diagnostic>& out) {
  // The staged pipeline engine owns every worker thread lifecycle (spawn,
  // ring wiring, drain-on-error, join), and src/util hosts the low-level
  // concurrency primitives it is built from. Ad-hoc std::thread anywhere
  // else escapes that discipline: no shard determinism, no guaranteed join,
  // no first-error propagation.
  if (path_contains(p.file->path, "core/parallel_campaign.cc")) return;
  if (path_contains(p.file->path, "util/")) return;
  const std::string_view code = p.code;
  for (const std::string_view word :
       {std::string_view("thread"), std::string_view("jthread")}) {
    for (std::size_t pos = find_word(code, word); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      // Only the qualified type name `std::thread` counts. This skips
      // `#include <thread>`, identifiers like `threads` (word boundary),
      // and `std::this_thread::*` (the match inside `this_thread` is not a
      // whole word).
      const std::size_t colon2 = prev_nonspace(code, pos);
      if (colon2 == std::string_view::npos || colon2 < 1) continue;
      if (code[colon2] != ':' || code[colon2 - 1] != ':') continue;
      const std::size_t std_last = prev_nonspace(code, colon2 - 1);
      if (std_last == std::string_view::npos || std_last < 2) continue;
      if (code.compare(std_last - 2, 3, "std") != 0) continue;
      if (std_last >= 3 && ident_char(code[std_last - 3])) continue;
      out.push_back({std::string(p.file->path), line_of(p, pos), std::string(kRawThread),
                     "raw 'std::" + std::string(word) + "' outside core/parallel_campaign.cc "
                     "and src/util: route parallel work through run_pipeline() so shards stay "
                     "deterministic and errors join cleanly",
                     "",
                     {}});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Diagnostic> run_lint(const std::vector<SourceFile>& files) {
  return run_lint(files, Options{});
}

std::vector<Diagnostic> run_lint(const std::vector<SourceFile>& files, const Options& options) {
  // Pass 1: the symbol index (blanked text, suppressions, structs, functions,
  // includes, module ownership).
  const SymbolIndex index = build_index(files);

  // Pass 2: the approximate call graph.
  const CallGraph graph = build_call_graph(index);

  // Cross-file harvest for the unordered-iteration rule.
  std::set<std::string> unordered_members;
  std::set<std::string> unordered_aliases;
  std::vector<std::set<std::string>> unordered_locals(index.files.size());
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    harvest_unordered_names(index.files[i], unordered_members, unordered_locals[i],
                            unordered_aliases);
  }
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    harvest_alias_decls(index.files[i], unordered_aliases, unordered_members,
                        unordered_locals[i]);
  }

  // Pass 3: the rules.
  std::vector<Diagnostic> diags;
  std::vector<TaintSource> unordered_taint;
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const Prepared& p = index.files[i];
    std::set<std::string> names = unordered_members;
    names.insert(unordered_locals[i].begin(), unordered_locals[i].end());
    const std::vector<UnorderedSite> sites = collect_unordered_sites(p, names);
    check_unordered_iteration(p, sites, diags);
    for (const UnorderedSite& s : sites) {
      const int line = line_of(p, s.pos);
      if (is_allowed(p, line, kTaint) || is_allowed(p, line, kUnorderedIter)) continue;
      unordered_taint.push_back(TaintSource{static_cast<int>(i), s.pos, line,
                                            s.what + " over unordered container '" + s.name +
                                                "'",
                                            std::string(kUnorderedIter)});
    }
    check_wallclock(p, diags);
    check_pointer_keys(p, diags);
    check_pragma_once(p, diags);
    check_using_namespace(p, diags);
    check_nodiscard_result(p, diags);
    check_obs_span_balance(p, diags);
    check_raw_thread(p, diags);
  }
  check_codec_parity(index, graph, diags);
  check_phase_sum(index, diags);
  check_determinism_taint(index, graph, unordered_taint, diags);
  check_obs_domain_separation(index, graph, diags);
  check_include_cycles(index, diags);
  if (!options.layers_text.empty()) {
    LayerConfig config;
    std::string error;
    if (!LayerConfig::parse(options.layers_text, &config, &error)) {
      // A broken config is itself a finding — the tree cannot claim
      // conformance to a DAG that does not parse or is not a DAG.
      diags.push_back({"tools/lint/layers.conf", 1, std::string(kLayering), error, "", {}});
    } else {
      check_layering(index, config, diags);
    }
  }

  // Apply suppressions, then sort and dedupe for stable output.
  std::vector<Diagnostic> out;
  for (Diagnostic& d : diags) {
    const Prepared* p = nullptr;
    for (const Prepared& cand : index.files) {
      if (cand.file->path == d.path) {
        p = &cand;
        break;
      }
    }
    if (p != nullptr && is_allowed(*p, d.line, d.rule)) continue;
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.path, a.line, a.rule, a.message) <
           std::tie(b.path, b.line, b.rule, b.message);
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SourceFile> load_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        paths.push_back(entry.path().generic_string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> out;
  out.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    out.push_back(SourceFile{path, std::move(buf).str()});
  }
  return out;
}

std::string format(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ": error: [" + d.rule + "] " + d.message;
}

namespace {

std::string json_str(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string format_json(const std::vector<Diagnostic>& diags) {
  std::string out = "{\"findings\": [";
  bool first = true;
  for (const Diagnostic& d : diags) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"rule\": " + json_str(d.rule) + ", \"path\": " + json_str(d.path) +
           ", \"line\": " + std::to_string(d.line) + ", \"key\": " + json_str(d.key) +
           ", \"trace\": [";
    for (std::size_t i = 0; i < d.trace.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_str(d.trace[i]);
    }
    out += "], \"message\": " + json_str(d.message) + "}";
  }
  out += diags.empty() ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace ednsm::lint
