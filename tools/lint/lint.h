// ednsm_lint — project-invariant static analyzer for the ednsm tree.
//
// The compiler cannot see the invariants the reproduction's headline claims
// rest on: sharded campaigns must stay byte-identical for any --threads N,
// QueryTiming::phase_sum() <= total must hold additively through every codec,
// and every serialized field must survive a JSON round trip. This tool is a
// token/AST-lite scanner over src/, tools/, and bench/ that enforces those
// invariants as named, suppressible rules (see kRules in lint.cc and the
// "Static analysis" section of DESIGN.md).
//
// Suppression: a comment `// ednsm-lint: allow(rule-id)` (or
// `allow(rule-a, rule-b)`) on the violating line or the line directly above
// silences the named rules for that line. Suppressions are expected to carry
// a rationale in the rest of the comment.
#pragma once

#include <string>
#include <vector>

namespace ednsm::lint {

// One lint finding, attributed to a file:line and a stable rule ID.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  [[nodiscard]] bool operator==(const Diagnostic&) const = default;
};

// A source file handed to the analyzer. `path` is used for diagnostics and
// for path-keyed rule behavior (header-only rules key off the extension;
// the wall-clock rule exempts the netsim clock layer), so tests may pass
// synthetic paths with fixture content.
struct SourceFile {
  std::string path;
  std::string content;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

// The stable rule table (IDs + one-line summaries), in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

// Run every rule over the file set. Cross-file rules (codec parity,
// unordered-container harvesting) see the whole set at once, so callers
// should pass a complete tree, not one file at a time, when they want
// tree-level guarantees. Returned diagnostics are sorted by
// (path, line, rule) and exclude suppressed findings.
[[nodiscard]] std::vector<Diagnostic> run_lint(const std::vector<SourceFile>& files);

// Recursively collect *.h / *.hpp / *.cc / *.cpp under each root,
// lexicographically sorted for deterministic diagnostics.
[[nodiscard]] std::vector<SourceFile> load_tree(const std::vector<std::string>& roots);

// "path:line: error: [rule-id] message"
[[nodiscard]] std::string format(const Diagnostic& d);

}  // namespace ednsm::lint
