// ednsm_lint — project-invariant static analyzer for the ednsm tree.
//
// The compiler cannot see the invariants the reproduction's headline claims
// rest on: sharded campaigns must stay byte-identical for any --threads N,
// QueryTiming::phase_sum() <= total must hold additively through every codec,
// and every serialized field must survive a JSON round trip. This analyzer
// enforces those invariants as named, suppressible rules.
//
// It runs in three passes (DESIGN.md "Static analysis"):
//   1. index  — every translation unit parsed into a symbol index
//               (tools/lint/index.h): structs/fields, function definitions,
//               includes, module ownership.
//   2. graph  — approximate intraproject call graph (tools/lint/graph.h).
//   3. rules  — token rules plus the index/graph-aware checks: codec parity
//               (helper-function aware), determinism taint dataflow with
//               source-to-sink call paths, and the module-layering DAG from
//               tools/lint/layers.conf.
//
// Suppression: a comment `// ednsm-lint: allow(rule-id)` (or
// `allow(rule-a, rule-b)`) on the violating line or the line directly above
// silences the named rules for that line. Suppressions are expected to carry
// a rationale in the rest of the comment. Accepted legacy findings can also
// be carried in a committed baseline (tools/lint/baseline.json); see
// tools/lint/baseline.h.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/index.h"

namespace ednsm::lint {

// One lint finding, attributed to a file:line and a stable rule ID.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
  // Stable, line-number-independent identity for baseline matching. Layering
  // findings use "from->to"; taint findings use "source_fn->sink_fn"; other
  // rules leave it empty (they baseline by rule+path alone).
  std::string key;
  // For determinism-taint: the source-to-sink call path (qualified function
  // names, source first). Empty for other rules.
  std::vector<std::string> trace;

  [[nodiscard]] bool operator==(const Diagnostic&) const = default;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

// The stable rule table (IDs + one-line summaries), in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

// Optional analyzer inputs beyond the file set.
struct Options {
  // Contents of a layers.conf file declaring the module dependency DAG.
  // Empty = the arch-layering rule is skipped (the include-cycle rule runs
  // regardless; it needs no configuration).
  std::string layers_text;
};

// Run every rule over the file set. Cross-file rules (codec parity, the call
// graph, layering) see the whole set at once, so callers should pass a
// complete tree, not one file at a time, when they want tree-level
// guarantees. Returned diagnostics are sorted by (path, line, rule) and
// exclude suppressed findings.
[[nodiscard]] std::vector<Diagnostic> run_lint(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Diagnostic> run_lint(const std::vector<SourceFile>& files,
                                               const Options& options);

// Recursively collect *.h / *.hpp / *.cc / *.cpp under each root,
// lexicographically sorted for deterministic diagnostics.
[[nodiscard]] std::vector<SourceFile> load_tree(const std::vector<std::string>& roots);

// "path:line: error: [rule-id] message"
[[nodiscard]] std::string format(const Diagnostic& d);

// Machine-readable report: {"findings":[{rule,path,line,key,message,trace}]},
// keys sorted, one finding per line, trailing newline. Stable across runs.
[[nodiscard]] std::string format_json(const std::vector<Diagnostic>& diags);

}  // namespace ednsm::lint
